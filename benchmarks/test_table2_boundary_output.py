"""Benchmark: regenerate Table II (FO-4 heterogeneity at the driver output)."""

from conftest import emit

from repro.experiments.tables import table2_output_boundary


def test_table2_boundary_output(benchmark):
    rows = benchmark(table2_output_boundary)
    by_label = {r.label: r for r in rows}

    lines = [
        f"{'':12s}{'Case-I':>10s}{'Case-II':>10s}{'d%':>8s}"
        f"{'Case-III':>10s}{'Case-IV':>10s}{'d%':>8s}"
    ]

    def pct(a, b):
        return (a - b) / b * 100.0

    for attr, label in (
        ("rise_slew_ps", "Rise Slew"),
        ("fall_slew_ps", "Fall Slew"),
        ("rise_delay_ps", "Rise Del."),
        ("fall_delay_ps", "Fall Del."),
        ("leakage_uw", "Lkg. Pow."),
        ("total_power_uw", "Total Pow."),
    ):
        i, ii = getattr(by_label["Case-I"], attr), getattr(by_label["Case-II"], attr)
        iii, iv = getattr(by_label["Case-III"], attr), getattr(by_label["Case-IV"], attr)
        lines.append(
            f"{label:12s}{i:10.3f}{ii:10.3f}{pct(ii, i):8.1f}"
            f"{iii:10.3f}{iv:10.3f}{pct(iv, iii):8.1f}"
        )
    emit("Table II: heterogeneity at driver output (time ps, power uW)",
         "\n".join(lines))

    # Paper's published signs: fast driver with the smaller 9T load gets
    # faster and cheaper; slow driver with the bigger 12T load the reverse.
    case1, case2 = by_label["Case-I"], by_label["Case-II"]
    case3, case4 = by_label["Case-III"], by_label["Case-IV"]
    for attr in ("rise_slew_ps", "fall_slew_ps", "rise_delay_ps",
                 "fall_delay_ps", "total_power_uw"):
        assert getattr(case2, attr) < getattr(case1, attr), attr
        assert getattr(case4, attr) > getattr(case3, attr), attr

    # magnitude class: timing deltas within ~25% (paper: <= 22.3%)
    for a, b in ((case2, case1), (case4, case3)):
        for attr in ("rise_delay_ps", "fall_delay_ps",
                     "rise_slew_ps", "fall_slew_ps"):
            delta = abs(pct(getattr(a, attr), getattr(b, attr)))
            assert delta <= 25.0, (attr, delta)

    # leakage is driver-dominated: essentially unchanged at this boundary
    assert abs(pct(case2.leakage_uw, case1.leakage_uw)) < 5
    # fast/slow baseline anchors match the published characterization
    assert case1.rise_delay_ps == 12.5
    assert case3.rise_delay_ps == 23.6
