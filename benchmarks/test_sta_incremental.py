"""Incremental-STA speedup guards: opt-loop edits and period sweeps.

Two microbenches compare :class:`TimingSession` against the same session
with the ``REPRO_STA=full`` kill switch (i.e. a from-scratch ``run_sta``
per query, through identical code paths):

- **opt loop**: the optimizer's edit -> report cycle -- one local resize
  then a full report with cell slacks, repeated over many rounds.  The
  dirty cone is a small fraction of the graph, so the incremental side
  must win by at least 2x.
- **period sweep**: ``quick_max_frequency``-style probes on a frozen
  netlist.  Arrivals are period-independent, so the session propagates
  once and each probe is O(endpoints); the guard is 3x.

Both record their measurements in ``BENCH_sta.json`` at the repo root
(speedups, wall times, re-propagated node fraction).

Runs under ``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.incremental import TimingSession

SCALE = 0.3
SEED = 3
OPT_ROUNDS = 30
SWEEP_PROBES = 12
MIN_OPT_SPEEDUP = 2.0
MIN_SWEEP_SPEEDUP = 3.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sta.json"

_LIB12, _LIB9 = make_library_pair()
_LIBS = {_LIB12.name: _LIB12, _LIB9.name: _LIB9}


def _fresh():
    nl = generate_netlist("aes", _LIB12, scale=SCALE, seed=SEED)
    calc = DelayCalculator(nl, FanoutWireModel(_LIB12), _LIBS)
    return nl, calc


def _resize_round(nl, calc, round_idx: int) -> None:
    """One deterministic local edit with the flow's invalidation calls."""
    cands = [
        i
        for i in nl.instances.values()
        if not i.cell.is_sequential and not i.cell.is_macro
    ]
    inst = cands[(round_idx * 37) % len(cands)]
    lib = _LIBS[inst.cell.library_name]
    new_cell = lib.upsize(inst.cell) or lib.downsize(inst.cell)
    if new_cell is None:
        return
    nl.rebind(inst.name, new_cell)
    for _pin, net_name in inst.connected_pins():
        calc.invalidate(net_name)


def _opt_loop(force_full: bool) -> tuple[float, TimingSession]:
    nl, calc = _fresh()
    old = os.environ.pop("REPRO_STA", None)
    if force_full:
        os.environ["REPRO_STA"] = "full"
    try:
        session = TimingSession(nl, calc)
        session.report(0.8)  # cold build outside the clock
        t0 = time.perf_counter()
        for r in range(OPT_ROUNDS):
            _resize_round(nl, calc, r)
            session.report(0.8, with_cell_slacks=True)
        elapsed = time.perf_counter() - t0
    finally:
        if old is not None:
            os.environ["REPRO_STA"] = old
        else:
            os.environ.pop("REPRO_STA", None)
    return elapsed, session


def _sweep(force_full: bool) -> float:
    nl, calc = _fresh()
    old = os.environ.pop("REPRO_STA", None)
    if force_full:
        os.environ["REPRO_STA"] = "full"
    try:
        session = TimingSession(nl, calc)
        lo, hi = 0.15, 4.0
        session.report(hi, with_cell_slacks=False)  # cold build off-clock
        t0 = time.perf_counter()
        for _ in range(SWEEP_PROBES):
            mid = 0.5 * (lo + hi)
            report = session.report(mid, with_cell_slacks=False)
            if report.wns_ns >= -0.06 * mid:
                hi = mid
            else:
                lo = mid
        elapsed = time.perf_counter() - t0
    finally:
        if old is not None:
            os.environ["REPRO_STA"] = old
        else:
            os.environ.pop("REPRO_STA", None)
    return elapsed


def _update_bench(section: str, payload: dict) -> None:
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    data["netlist"] = {"name": "aes", "scale": SCALE, "seed": SEED}
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_opt_loop_speedup():
    full_s, _ = _opt_loop(force_full=True)
    inc_s, session = _opt_loop(force_full=False)
    speedup = full_s / inc_s
    stats = session.stats
    _update_bench(
        "opt_loop",
        {
            "rounds": OPT_ROUNDS,
            "full_s": round(full_s, 4),
            "incremental_s": round(inc_s, 4),
            "speedup": round(speedup, 2),
            "propagated_fraction": round(stats.propagated_fraction, 4),
            "incremental_runs": stats.incremental_runs,
            "full_runs": stats.full_runs,
        },
    )
    emit(
        "incremental STA, opt loop (aes, scale %.2f, %d rounds)"
        % (SCALE, OPT_ROUNDS),
        f"full        {full_s * 1e3:8.1f} ms\n"
        f"incremental {inc_s * 1e3:8.1f} ms\n"
        f"speedup     {speedup:.2f}x (guard >= {MIN_OPT_SPEEDUP:.0f}x)\n"
        f"propagated  {100 * stats.propagated_fraction:.1f}% of nodes/report",
    )
    assert stats.incremental_runs > 0, "edits never took the incremental path"
    assert speedup >= MIN_OPT_SPEEDUP, (
        f"opt-loop speedup {speedup:.2f}x below {MIN_OPT_SPEEDUP:.0f}x guard"
    )


def test_period_sweep_speedup():
    full_s = _sweep(force_full=True)
    inc_s = _sweep(force_full=False)
    speedup = full_s / inc_s
    _update_bench(
        "period_sweep",
        {
            "probes": SWEEP_PROBES,
            "full_s": round(full_s, 4),
            "incremental_s": round(inc_s, 4),
            "speedup": round(speedup, 2),
        },
    )
    emit(
        "incremental STA, period sweep (aes, scale %.2f, %d probes)"
        % (SCALE, SWEEP_PROBES),
        f"full        {full_s * 1e3:8.1f} ms\n"
        f"incremental {inc_s * 1e3:8.1f} ms\n"
        f"speedup     {speedup:.2f}x (guard >= {MIN_SWEEP_SPEEDUP:.0f}x)",
    )
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"sweep speedup {speedup:.2f}x below {MIN_SWEEP_SPEEDUP:.0f}x guard"
    )
