"""Incremental-placement speedup guard: the optimizer's edit->analyze loop.

One microbench compares :class:`PlacementSession` against the same
session with the ``REPRO_PLACE=full`` kill switch (a from-scratch
``legalize`` + HPWL + ``analyze_congestion`` per query, through
identical code paths): one local resize, then re-legalize and re-query
HPWL and the congestion map -- the cycle the sizing/cloning/ECO loops
run per move.  A touched cell dirties a handful of rows and nets while
the full side repacks every row and replays every net, so the
incremental side must win by at least 2x.

Measurements land in ``BENCH_place.json`` at the repo root.

Runs under ``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit

from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import build_floorplan
from repro.place.incremental import PlacementSession
from repro.place.quadratic import global_place

SCALE = 0.3
SEED = 3
OPT_ROUNDS = 30
MIN_OPT_SPEEDUP = 2.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_place.json"

_LIB12, _LIB9 = make_library_pair()
_LIBS = {_LIB12.name: _LIB12, _LIB9.name: _LIB9}


def _fresh():
    nl = generate_netlist("aes", _LIB12, scale=SCALE, seed=SEED)
    for name in sorted(nl.instances)[::2]:
        inst = nl.instances[name]
        if inst.cell.is_macro:
            continue
        nl.rebind(name, _LIB9.equivalent_of(inst.cell))
        inst.tier = 1
    tier_libs = {0: _LIB12, 1: _LIB9}
    fp = build_floorplan(nl, tier_libs, utilization=0.7)
    global_place(nl, fp)
    return nl, fp, tier_libs


def _resize_round(nl, session, round_idx: int) -> None:
    """One deterministic local edit with the flow's touch call."""
    cands = [
        i
        for i in nl.instances.values()
        if not i.cell.is_sequential and not i.cell.is_macro
    ]
    inst = cands[(round_idx * 37) % len(cands)]
    lib = _LIBS[inst.cell.library_name]
    new_cell = lib.upsize(inst.cell) or lib.downsize(inst.cell)
    if new_cell is None:
        return
    nl.rebind(inst.name, new_cell)
    session.dirty_cell(inst.name)


def _opt_loop(force_full: bool) -> tuple[float, PlacementSession]:
    nl, fp, tier_libs = _fresh()
    old = os.environ.pop("REPRO_PLACE", None)
    if force_full:
        os.environ["REPRO_PLACE"] = "full"
    try:
        session = PlacementSession(nl, fp, tier_libs)
        session.legalize_all()  # cold build outside the clock
        session.hpwl_um()
        session.congestion()
        t0 = time.perf_counter()
        for r in range(OPT_ROUNDS):
            _resize_round(nl, session, r)
            session.legalize_all()
            session.hpwl_um()
            session.congestion()
        elapsed = time.perf_counter() - t0
    finally:
        if old is not None:
            os.environ["REPRO_PLACE"] = old
        else:
            os.environ.pop("REPRO_PLACE", None)
    return elapsed, session


def _update_bench(section: str, payload: dict) -> None:
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    data["netlist"] = {"name": "aes", "scale": SCALE, "seed": SEED}
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_opt_loop_speedup():
    full_s, _ = _opt_loop(force_full=True)
    inc_s, session = _opt_loop(force_full=False)
    speedup = full_s / inc_s
    stats = session.stats
    rows_fraction = stats.rows_repacked / max(1, stats.rows_total)
    _update_bench(
        "opt_loop",
        {
            "rounds": OPT_ROUNDS,
            "full_s": round(full_s, 4),
            "incremental_s": round(inc_s, 4),
            "speedup": round(speedup, 2),
            "rows_repacked_fraction": round(rows_fraction, 4),
            "nets_refreshed": stats.nets_refreshed,
            "incremental_runs": stats.incremental_runs,
            "full_runs": stats.full_runs,
        },
    )
    emit(
        "incremental placement, opt loop (aes, scale %.2f, %d rounds)"
        % (SCALE, OPT_ROUNDS),
        f"full        {full_s * 1e3:8.1f} ms\n"
        f"incremental {inc_s * 1e3:8.1f} ms\n"
        f"speedup     {speedup:.2f}x (guard >= {MIN_OPT_SPEEDUP:.0f}x)\n"
        f"rows        {100 * rows_fraction:.1f}% repacked/legalize",
    )
    assert stats.incremental_runs > 0, "edits never took the incremental path"
    assert speedup >= MIN_OPT_SPEEDUP, (
        f"opt-loop speedup {speedup:.2f}x below {MIN_OPT_SPEEDUP:.0f}x guard"
    )
