"""Benchmark: the Section V headline claims.

"the heterogeneous 3-D ICs show a PPAC benefit ranging from 10% to 50%
compared to 3-D designs, and the benefit increases to about 18%-57%
compared to 2-D" -- regenerated as measured min/max PPC deltas.
"""

from conftest import emit

from repro.experiments.tables import conclusion_claims


def test_conclusion_claims(benchmark, matrix):
    claims = benchmark(conclusion_claims, matrix)
    emit(
        "Section V: PPC benefit ranges of heterogeneous 3-D",
        "\n".join(f"{k:16s} {v:8.1f}%" for k, v in claims.items()),
    )
    # The benefit must be positive against every 2-D configuration and
    # almost every 3-D one; the single negative (LDPC vs 3-D 9-track, the
    # pairing the paper itself flags as close) is documented in
    # EXPERIMENTS.md and bounded here.
    assert claims["ppc_vs_2d_min"] > 0
    assert claims["ppc_vs_3d_min"] > -25
    assert claims["ppc_vs_3d_max"] > 10
    assert claims["ppc_vs_2d_max"] > claims["ppc_vs_3d_min"]
