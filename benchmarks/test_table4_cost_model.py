"""Benchmark: regenerate Table IV (the cost model) and check its constants."""

import pytest
from conftest import emit

from repro.cost.model import CostModel
from repro.experiments.tables import table4_cost_model


def test_table4_cost_model(benchmark):
    values = benchmark(table4_cost_model)
    lines = [f"{k:28s} {v:10.4f}" for k, v in values.items()]
    emit("Table IV: cost model assumptions (in units of C')", "\n".join(lines))

    # Published constants, exactly.
    assert values["wafer_cost_2d"] == pytest.approx(0.96)
    assert values["wafer_cost_3d"] == pytest.approx(1.97)
    assert values["feol_cost"] == pytest.approx(0.30)
    assert values["integration_penalty"] == pytest.approx(0.05)
    assert values["wafer_diameter_mm"] == 300.0
    assert values["defect_density_per_mm2"] == pytest.approx(0.2)
    assert values["wafer_yield"] == pytest.approx(0.95)
    assert values["yield_degradation_3d"] == pytest.approx(0.95)


def test_table4_die_cost_at_paper_scale(benchmark):
    """Check Eq. (1)-(5) land near the paper's Table VI die costs."""
    model = CostModel()

    def paper_scale_costs():
        # Table VI footprints: Si area / 2 per tier (mm^2)
        return {
            "netcard": model.die_cost(0.384 / 2, 2).die_cost * 1e6,
            "aes": model.die_cost(0.126 / 2, 2).die_cost * 1e6,
            "ldpc": model.die_cost(0.216 / 2, 2).die_cost * 1e6,
            "cpu": model.die_cost(0.390 / 2, 2).die_cost * 1e6,
        }

    costs = benchmark(paper_scale_costs)
    emit("Table IV applied to Table VI footprints (1e-6 C')",
         "\n".join(f"{k:10s} {v:8.2f}" for k, v in costs.items()))
    # With Eq. (5) corrected (wafer cost / good dies, yield applied once)
    # the model reproduces the paper's printed Table VI die costs to
    # better than 0.5%: netcard 6.16, aes 1.97, ldpc 3.41, cpu 6.26.
    paper = {"netcard": 6.16, "aes": 1.97, "ldpc": 3.41, "cpu": 6.26}
    ours = {"netcard": 6.1845, "aes": 1.9747, "ldpc": 3.4181, "cpu": 6.2850}
    for name, value in costs.items():
        assert value == pytest.approx(ours[name], rel=1e-3), name
        assert value == pytest.approx(paper[name], rel=0.005), name
