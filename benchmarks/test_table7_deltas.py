"""Benchmark: regenerate Table VII (hetero vs each homogeneous config).

The table's sign structure is the paper's core claim: a negative delta
(positive for PPC) means the heterogeneous design wins that metric.  The
assertions below encode the rows the conclusions rest on; deltas where our
calibration deviates from the published magnitudes are listed (with
measured values) in EXPERIMENTS.md.
"""

from conftest import emit

from repro.experiments.tables import TABLE7_METRICS, table7_deltas

DESIGNS = ("netcard", "aes", "ldpc", "cpu")


def render(deltas):
    lines = []
    for config, per_design in deltas.items():
        lines.append(f"-- vs {config} --")
        header = f"{'metric':18s}" + "".join(f"{d:>10s}" for d in DESIGNS)
        lines.append(header)
        for metric, label in TABLE7_METRICS.items():
            row = "".join(
                f"{per_design[d][metric]:10.1f}" for d in DESIGNS
            )
            lines.append(f"{label:18s}" + row)
    return "\n".join(lines)


def test_table7_deltas(benchmark, matrix):
    deltas = benchmark(table7_deltas, matrix)
    emit("Table VII: PPAC percent deltas (hetero - config)/config x 100",
         render(deltas))

    # --- vs the 9-track configurations: hetero wins almost everywhere.
    # The one exception is LDPC vs 3-D 9-track: the paper itself notes
    # that pairing is close ("only for LDPC does the 3-D 9-track design
    # compare to the heterogeneous implementation"), and in our
    # wire-dominated substrate the 9-track design edges ahead
    # (EXPERIMENTS.md).
    for config in ("2D_9T", "3D_9T"):
        for design in DESIGNS:
            if design == "ldpc" and config == "3D_9T":
                continue
            d = deltas[config][design]
            assert d["total_power_mw"] < 5, (config, design, "power")
            assert d["effective_delay_ns"] < 5, (config, design, "delay")
            assert d["ppc"] > 0, (config, design, "ppc")

    # --- vs the 12-track configurations ---
    # One documented exception: the CPU's footprint only shrinks ~2% vs
    # 2-D at repro scale, so the 3-D wafer premium leaves its die cost
    # positive against 2D_12T (EXPERIMENTS.md); every 3-D comparison and
    # every other design carries the published sign.
    for config in ("2D_12T", "3D_12T"):
        for design in DESIGNS:
            d = deltas[config][design]
            # cheaper silicon and cheaper dies...
            assert d["si_area_mm2"] < 0, (config, design, "si")
            if not (design == "cpu" and config == "2D_12T"):
                assert d["die_cost_1e6"] < 0, (config, design, "cost")
            # ...less power...
            assert d["total_power_mw"] < 0, (config, design, "power")
            # ...better performance-per-cost (the headline claim)
            assert d["ppc"] > 0, (config, design, "ppc")

    # 12-track 3-D keeps the raw-delay crown (the paper's only metric
    # where hetero loses): effective delay deltas vs 3D_12T are >= 0 for
    # most designs.
    worse_delay = sum(
        1 for design in DESIGNS
        if deltas["3D_12T"][design]["effective_delay_ns"] > -1
    )
    assert worse_delay >= 3

    # Cost per cm2: all 3-D options within a few percent of each other
    # (paper: within 1%), 2-D cheaper per area than hetero 3-D.
    for design in DESIGNS:
        assert abs(deltas["3D_12T"][design]["cost_per_cm2"]) < 8
        assert deltas["2D_12T"][design]["cost_per_cm2"] > 0

    # AES is the weakest case for hetero (symmetric paths): its effective
    # delay penalty vs 12-track 3-D is the largest of the four designs.
    aes_pen = deltas["3D_12T"]["aes"]["effective_delay_ns"]
    assert aes_pen >= max(
        deltas["3D_12T"][d]["effective_delay_ns"] for d in DESIGNS
    ) - 1e-9
