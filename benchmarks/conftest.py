"""Shared fixtures for the table/figure regeneration benchmarks.

The 4-netlist x 5-configuration evaluation matrix is expensive (minutes),
so it runs once per session and every benchmark reads from it.  Scale with
``REPRO_SCALE`` (default 0.5); the paper's qualitative shapes hold from
~0.4 upward.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import default_scale, run_matrix


@pytest.fixture(scope="session")
def matrix():
    """The full evaluation matrix (cached for the whole benchmark run)."""
    return run_matrix(scale=default_scale(), seed=1)


def emit(title: str, text: str) -> None:
    """Print a regenerated table under a recognizable banner."""
    print(f"\n===== {title} =====")
    print(text)
