"""Shared fixtures for the table/figure regeneration benchmarks.

The 4-netlist x 5-configuration evaluation matrix is expensive (minutes)
cold, so it runs once per session and every benchmark reads from it.
Scale with ``REPRO_SCALE`` (default 0.5); the paper's qualitative shapes
hold from ~0.4 upward.

The matrix engine keeps a persistent on-disk cache (``$REPRO_CACHE_DIR``,
default ``~/.cache/repro``), so a second benchmark session warm-starts in
seconds without running a single flow; set ``REPRO_JOBS=N`` to fan a cold
run out over N worker processes.  A telemetry block (flows run, cache
hits/misses, per-cell wall times) is printed at the end of the session.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import default_scale, run_matrix
from repro.experiments.telemetry import get_telemetry


@pytest.fixture(scope="session")
def matrix():
    """The full evaluation matrix (cached for the whole benchmark run)."""
    return run_matrix(scale=default_scale(), seed=1)


def emit(title: str, text: str) -> None:
    """Print a regenerated table under a recognizable banner."""
    print(f"\n===== {title} =====")
    print(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the matrix engine's telemetry after the benchmark run."""
    telemetry = get_telemetry()
    if not (telemetry.flows_run or telemetry.disk_hits or telemetry.memory_hits):
        return
    terminalreporter.write_sep("=", "evaluation-matrix telemetry")
    for line in telemetry.summary().splitlines():
        terminalreporter.write_line(line)
