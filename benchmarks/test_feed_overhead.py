"""Feed-overhead guard: an active subscriber must not slow serving.

Publish never blocks: the daemon offers every event to each
subscriber's bounded queue and moves on, so serving a matrix with a
live ``repro top``-style client attached must cost essentially the
same as serving it unobserved.  This benchmark runs two identical
daemons with separate result caches -- one bare, one with a subscribe
client consuming the full feed -- and laps the same aes matrix through
both.  Laps are paired (same seed submitted to both arms each round,
fresh seed per round so the result cache never short-circuits a lap)
and the guard takes the best paired ratio, the same
suppress-run-order-noise idea as test_trace_overhead.py; it fails if
the observed daemon is more than 5% slower.

Runs under ``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

from conftest import emit

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.serve_utils import daemon_env, start_daemon, stop_daemon  # noqa: E402

from repro.experiments.configs import CONFIG_NAMES  # noqa: E402

SCALE = 0.2
PERIOD_NS = 0.7
REPEATS = 3
MAX_OVERHEAD = 1.05


def _spec(seed: int) -> dict:
    return {
        "kind": "matrix",
        "designs": ["aes"],
        "configs": list(CONFIG_NAMES),
        "scale": SCALE,
        "seed": seed,
        "periods": {"aes": PERIOD_NS},
    }


class _Consumer:
    """Active subscribe client: reads every event at full speed."""

    def __init__(self, socket_path: Path):
        from repro.serve.client import ServeClient

        self.events = 0
        self.spans = 0
        self._client = ServeClient(socket_path)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        for event in self._client.subscribe(idle_s=0.2, reconnect_s=2.0):
            if event is None or "snapshot" in event:
                continue
            self.events += 1
            if str(event.get("event", "")).startswith("span_"):
                self.spans += 1


def _lap(client, seed: int) -> float:
    t0 = time.perf_counter()
    response = client.submit(_spec(seed))
    assert response["ok"], response
    view = client.wait(response["job_id"], timeout_s=600, poll_s=0.05)
    assert view["state"] == "done", view
    return time.perf_counter() - t0


def test_feed_overhead_under_five_percent():
    tmp = Path(tempfile.mkdtemp(prefix="feed-overhead-"))
    daemons = []
    consumer = None
    try:
        clients = {}
        for arm in ("bare", "observed"):
            state = tmp / arm / "serve"
            env = daemon_env(
                state,
                REPRO_CACHE_DIR=str(tmp / arm / "cache"),
                REPRO_SERVE_WORKERS="1",
            )
            proc, client = start_daemon(state, env=env)
            daemons.append(proc)
            clients[arm] = client
        consumer = _Consumer(tmp / "observed" / "serve" / "serve.sock")

        # Warm lap on each arm: lazy imports and library build happen
        # in the worker outside the clock (separate caches, so the
        # timed seeds below still execute every flow).
        _lap(clients["bare"], seed=90)
        _lap(clients["observed"], seed=90)
        ratios, laps = [], []
        for i in range(REPEATS):
            seed = 91 + i
            off = _lap(clients["bare"], seed)
            on = _lap(clients["observed"], seed)
            ratios.append(on / off)
            laps.append((off, on))
    finally:
        for proc in daemons:
            stop_daemon(proc)

    assert consumer is not None
    assert consumer.spans > 0, "subscriber saw no span events -- feed dead?"
    ratio = min(ratios)
    rounds = "\n".join(
        f"round {i}: bare {off * 1e3:8.1f} ms  observed {on * 1e3:8.1f} ms"
        f"  ratio {on / off:.4f}"
        for i, (off, on) in enumerate(laps)
    )
    emit(
        "feed overhead (served aes matrix, scale %.2f)" % SCALE,
        f"{rounds}\n"
        f"best paired ratio {ratio:.4f} (limit {MAX_OVERHEAD:.2f})\n"
        f"subscriber consumed {consumer.events} events"
        f" ({consumer.spans} span events)",
    )
    assert ratio < MAX_OVERHEAD, (
        f"active-subscriber overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (MAX_OVERHEAD - 1):.0f}% budget"
    )
