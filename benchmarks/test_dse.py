"""Design-space explorer speedup guards (naive vs optimized sweep).

One 200-config lattice (2 slow-die track heights x 5 supplies x 5
pinning caps x 4 FM tolerances) is explored twice from cold caches:

- **naive**: dominance pruning, stage-prefix reuse and warm period
  starts all disabled -- every config pays a full bisection period
  search of complete flows.  This run doubles as the exhaustive
  baseline for the byte-identity check.
- **optimized**: all three layers on (the ``repro explore`` defaults).

The guards are the PR's acceptance bar: >= 3x fewer flow-stage
executions, >= 2x wall clock, and a byte-identical Pareto front --
the optimizations are pure cost removal, never an answer change.

Measurements land in ``BENCH_dse.json`` at the repo root.  Runs under
``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import emit

from repro.experiments.dse import ExploreSpec, LatticeSpec, explore
from repro.experiments.telemetry import get_telemetry, reset_telemetry

SCALE = 0.08
SEED = 0
OPT_ITERATIONS = 2
PERIOD_STEPS = 17
LATTICE = LatticeSpec(
    slow_tracks=(8, 9),
    slow_vdd=(0.66, 0.70, 0.75, 0.81, 0.90),
    tier_caps=(0.20, 0.225, 0.25, 0.275, 0.30),
    fm_tolerances=(0.08, 0.10, 0.12, 0.15),
)  # 2 * 5 * 5 * 4 = 200 configs

MIN_STAGE_RATIO = 3.0
MIN_WALL_RATIO = 2.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_dse.json"


def _spec(**overrides) -> ExploreSpec:
    return ExploreSpec(
        design="aes",
        scale=SCALE,
        seed=SEED,
        lattice=LATTICE,
        opt_iterations=OPT_ITERATIONS,
        period_steps=PERIOD_STEPS,
        **overrides,
    )


def _run(**overrides):
    """One exploration from a cold, private cache; returns
    ``(report, telemetry_snapshot, wall_seconds)``."""
    old_dir = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-dse-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        reset_telemetry()
        try:
            t0 = time.perf_counter()
            report = explore(_spec(**overrides))
            wall = time.perf_counter() - t0
        finally:
            if old_dir is not None:
                os.environ["REPRO_CACHE_DIR"] = old_dir
            else:
                os.environ.pop("REPRO_CACHE_DIR", None)
    return report, get_telemetry().snapshot(), wall


def _update_bench(section: str, payload: dict) -> None:
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    data["sweep"] = {
        "design": "aes",
        "scale": SCALE,
        "seed": SEED,
        "configs": LATTICE.size,
        "period_steps": PERIOD_STEPS,
        "opt_iterations": OPT_ITERATIONS,
    }
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_dse_explorer_speedup():
    naive_report, naive_tel, naive_wall = _run(
        prune=False, reuse_prefix=False, warm_periods=False,
    )
    assert naive_report.ok, "naive exploration quarantined configs"
    assert len(naive_report.rows) == LATTICE.size

    opt_report, opt_tel, opt_wall = _run()
    assert opt_report.ok, "optimized exploration quarantined configs"

    stage_ratio = naive_tel["flow_stages_run"] / max(
        1, opt_tel["flow_stages_run"]
    )
    wall_ratio = naive_wall / opt_wall
    probe_ratio = naive_tel["period_probes"] / max(
        1, opt_tel["period_probes"]
    )
    identical = naive_report.front_json() == opt_report.front_json()

    _update_bench(
        "explorer",
        {
            "naive": {
                "wall_s": round(naive_wall, 2),
                "flows_run": naive_tel["flows_run"],
                "flow_stages_run": naive_tel["flow_stages_run"],
                "period_probes": naive_tel["period_probes"],
            },
            "optimized": {
                "wall_s": round(opt_wall, 2),
                "flows_run": opt_tel["flows_run"],
                "flow_stages_run": opt_tel["flow_stages_run"],
                "period_probes": opt_tel["period_probes"],
                "prefix_stages_reused": opt_tel["prefix_stages_reused"],
                "suffix_flows_reused": opt_tel["suffix_flows_reused"],
                "configs_pruned": opt_tel["dse_pruned"],
                "configs_evaluated": len(opt_report.rows),
            },
            "stage_ratio": round(stage_ratio, 2),
            "wall_ratio": round(wall_ratio, 2),
            "probe_ratio": round(probe_ratio, 2),
            "front_size": len(opt_report.front_ids),
            "front_byte_identical": identical,
        },
    )
    emit(
        "DSE explorer, %d-config sweep (aes, scale %.2f)"
        % (LATTICE.size, SCALE),
        f"naive      {naive_wall:7.1f} s, "
        f"{naive_tel['flow_stages_run']:6d} flow stages, "
        f"{naive_tel['period_probes']:4d} probes\n"
        f"optimized  {opt_wall:7.1f} s, "
        f"{opt_tel['flow_stages_run']:6d} flow stages, "
        f"{opt_tel['period_probes']:4d} probes "
        f"({opt_tel['prefix_stages_reused']} prefix stages reused, "
        f"{opt_tel['suffix_flows_reused']} flow tails reused, "
        f"{opt_tel['dse_pruned']} configs pruned)\n"
        f"stage ratio {stage_ratio:.2f}x (guard >= {MIN_STAGE_RATIO:.0f}x), "
        f"wall ratio {wall_ratio:.2f}x (guard >= {MIN_WALL_RATIO:.0f}x)\n"
        f"front       {len(opt_report.front_ids)} member(s), "
        f"byte-identical: {identical}",
    )
    assert identical, "optimized front diverged from the exhaustive baseline"
    assert opt_tel["prefix_stages_reused"] > 0, "prefix store never used"
    assert opt_tel["suffix_flows_reused"] > 0, "flow-tail reuse never fired"
    assert opt_tel["dse_pruned"] > 0, "dominance pruning never fired"
    assert stage_ratio >= MIN_STAGE_RATIO, (
        f"flow-stage ratio {stage_ratio:.2f}x below"
        f" {MIN_STAGE_RATIO:.0f}x guard"
    )
    assert wall_ratio >= MIN_WALL_RATIO, (
        f"wall-clock ratio {wall_ratio:.2f}x below"
        f" {MIN_WALL_RATIO:.0f}x guard"
    )
