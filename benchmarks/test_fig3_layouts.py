"""Benchmark: regenerate Fig. 3 (CPU layouts: 2-D 9T, 2-D 12T, hetero 3-D).

The figure's quantitative content: die outlines, per-tier row pitches
(the visibly different cell heights of Fig. 3(c)), densities, and ASCII
density maps standing in for the placement screenshots.
"""

import pytest
from conftest import emit

from repro.experiments.figures import density_heatmap, fig3_layout_stats


def test_fig3_layout_stats(benchmark, matrix):
    stats = benchmark(fig3_layout_stats, matrix)
    text = [s.describe() for s in stats]

    het_design = matrix.designs[("cpu", "3D_HET")]
    for tier, label in ((0, "bottom/12T"), (1, "top/9T")):
        text.append(f"[hetero 3-D, {label}]")
        text.append(density_heatmap(het_design, tier=tier))
    emit("Fig. 3: CPU layouts", "\n".join(text))

    by_config = {s.config: s for s in stats}
    two_9, two_12, het = (
        by_config["2D_9T"], by_config["2D_12T"], by_config["3D_HET"],
    )

    # 2-D implementations are wider than the 3-D one (Table VII widths).
    assert het.width_um < two_9.width_um
    assert het.width_um < two_12.width_um
    # the hetero design has two tiers with *different* row pitches --
    # the visibly different cell heights of Fig. 3(c)
    assert het.tiers == 2
    assert het.row_pitch_by_tier[0] == pytest.approx(1.2)
    assert het.row_pitch_by_tier[1] == pytest.approx(0.9)
    # both tiers actually hold cells
    assert het.cells_by_tier.get(0, 0) > 0
    assert het.cells_by_tier.get(1, 0) > 0
    # macros present in every implementation
    assert two_9.macro_count == two_12.macro_count == het.macro_count
