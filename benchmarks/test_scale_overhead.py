"""Scale-controller guard: admission control must not slow a quiet daemon.

The overload machinery -- the autoscaler pass in every supervisor tick,
the deadline sweep / retention sweep / compaction check / disk probe in
every maintenance tick, and the per-submit admission decisions -- all
run whether or not the daemon is under pressure.  On an unsaturated
daemon (one worker, one job at a time, queue nowhere near high-water)
that machinery must be invisible: this benchmark laps the same aes
matrix through two identical daemons, one with the scaling and
retention knobs at their defaults and one with them forced into their
most active configuration (a wide worker ceiling, an eager scale
threshold, tight retention bounds, and an aggressive compaction ratio),
and fails if the active arm is more than 5% slower.  Laps are paired
(same seed to both arms each round, fresh seed per round so the result
cache never short-circuits a lap) and the guard takes the best paired
ratio, the same suppress-run-order-noise idea as
test_feed_overhead.py.

Runs under ``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from conftest import emit

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.serve_utils import daemon_env, start_daemon, stop_daemon  # noqa: E402

from repro.experiments.configs import CONFIG_NAMES  # noqa: E402

SCALE = 0.2
PERIOD_NS = 0.7
REPEATS = 3
MAX_OVERHEAD = 1.05

#: The "active" arm: every new knob tuned to do the most bookkeeping an
#: unsaturated daemon can be asked to do (the pool still never scales,
#: because one serial submitter never builds a backlog).
ACTIVE_KNOBS = {
    "REPRO_SERVE_MAX_WORKERS": "8",
    # Threshold 3: the controller runs every tick but never fires --
    # one serial submitter keeps at most one job pending, and actually
    # spawning workers would measure process-boot cost, not the
    # controller.
    "REPRO_SERVE_SCALE_UP_PENDING": "3",
    "REPRO_SERVE_SCALE_COOLDOWN_S": "0.2",
    "REPRO_SERVE_IDLE_RETIRE_S": "0.5",
    "REPRO_SERVE_RETAIN_JOBS": "2",
    "REPRO_SERVE_RETAIN_S": "1",
    "REPRO_SERVE_COMPACT_MIN": "16",
    "REPRO_SERVE_COMPACT_RATIO": "0.9",
}


def _spec(seed: int) -> dict:
    return {
        "kind": "matrix",
        "designs": ["aes"],
        "configs": list(CONFIG_NAMES),
        "scale": SCALE,
        "seed": seed,
        "periods": {"aes": PERIOD_NS},
    }


def _lap(client, seed: int) -> float:
    t0 = time.perf_counter()
    response = client.submit(_spec(seed), deadline=600.0)
    assert response["ok"], response
    view = client.wait(response["job_id"], timeout_s=600, poll_s=0.05)
    assert view["state"] == "done", view
    return time.perf_counter() - t0


def test_scale_overhead_under_five_percent():
    tmp = Path(tempfile.mkdtemp(prefix="scale-overhead-"))
    daemons = []
    try:
        clients = {}
        for arm, extra in (("default", {}), ("active", ACTIVE_KNOBS)):
            state = tmp / arm / "serve"
            env = daemon_env(
                state,
                REPRO_CACHE_DIR=str(tmp / arm / "cache"),
                REPRO_SERVE_WORKERS="1",
                **extra,
            )
            proc, client = start_daemon(state, env=env)
            daemons.append(proc)
            clients[arm] = client

        # Warm lap on each arm: lazy imports and library build happen
        # in the worker outside the clock (separate caches, so the
        # timed seeds below still execute every flow).
        _lap(clients["default"], seed=70)
        _lap(clients["active"], seed=70)
        ratios, laps = [], []
        for i in range(REPEATS):
            seed = 71 + i
            off = _lap(clients["default"], seed)
            on = _lap(clients["active"], seed)
            ratios.append(on / off)
            laps.append((off, on))

        # The active arm really exercised its bounds: tight retention
        # must have evicted the earlier laps' results by now.
        stats = clients["active"].stats()["stats"]
        assert stats["evicted"] > 0, "tight retention never evicted -- inert?"
    finally:
        for proc in daemons:
            stop_daemon(proc)

    ratio = min(ratios)
    rounds = "\n".join(
        f"round {i}: default {off * 1e3:8.1f} ms  active {on * 1e3:8.1f} ms"
        f"  ratio {on / off:.4f}"
        for i, (off, on) in enumerate(laps)
    )
    emit(
        "scale/admission overhead (served aes matrix, scale %.2f)" % SCALE,
        f"{rounds}\n"
        f"best paired ratio {ratio:.4f} (limit {MAX_OVERHEAD:.2f})\n"
        f"active arm evicted {stats['evicted']} terminal results",
    )
    assert ratio < MAX_OVERHEAD, (
        f"admission/scaling overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (MAX_OVERHEAD - 1):.0f}% budget"
    )
