"""Ablation benchmarks for the flow's design choices (DESIGN.md index).

Three ablations over the heterogeneous CPU implementation:

1. **Timing-based partitioning budget** (Section III-A1 caps it at 20-30%
   of cell area): sweep the pinning cap.
2. **Heterogeneous CTS tier policy** (Section III-A2): PREFER_SLOW vs
   MAJORITY.
3. **ECO repartitioning** (Section III-C): on vs off at a tight target.
"""

import pytest
from conftest import emit

from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.experiments.runner import default_scale, find_target_period
from repro.flow import run_flow_hetero_3d
from repro.liberty.presets import make_library_pair


@pytest.fixture(scope="module")
def tight_period():
    return find_target_period("cpu", scale=default_scale(), seed=1)


def test_ablation_pinning_cap(benchmark, tight_period):
    """More fast-die budget for critical cells monotonically helps timing
    until the die fills; the paper settles at 20-30%."""
    lib12, lib9 = make_library_pair()
    scale = min(0.4, default_scale())

    def sweep():
        out = {}
        for cap in (0.10, 0.25, 0.40):
            _d, r = run_flow_hetero_3d(
                "cpu", lib12, lib9, period_ns=tight_period, scale=scale,
                seed=1, pinning_area_cap=cap, repartition=False,
                opt_iterations=8,
            )
            out[cap] = (r.wns_ns, r.total_power_mw)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation: timing-based partitioning area cap (CPU)",
        "\n".join(
            f"cap {cap:4.2f}: WNS {wns:+.3f} ns, power {p:.3f} mW"
            for cap, (wns, p) in results.items()
        ),
    )
    worst = min(wns for wns, _p in results.values())
    best = max(wns for wns, _p in results.values())
    # the knob must actually move timing at a tight target
    assert best >= worst


def test_ablation_cts_policy(benchmark, matrix):
    """PREFER_SLOW trades insertion delay for clock buffer area/power."""
    design = matrix.designs[("cpu", "3D_HET")]

    def both():
        out = {}
        for policy in (TierPolicy.MAJORITY, TierPolicy.PREFER_SLOW):
            report = ClockTreeSynthesizer(
                design.netlist, design.tier_libs, policy,
                frequency_ghz=design.frequency_ghz, slow_tier=1,
            ).run()
            out[policy.value] = report
        return out

    reports = benchmark(both)
    emit(
        "Ablation: heterogeneous CTS tier policy (CPU)",
        "\n".join(
            f"{name:12s}: buffers {r.buffer_count} "
            f"(top {r.buffer_count_by_tier.get(1, 0)}), "
            f"area {r.buffer_area_um2:.1f} um2, "
            f"latency {r.max_latency_ns:.3f} ns, power {r.power_mw:.4f} mW"
            for name, r in reports.items()
        ),
    )
    slow = reports["prefer_slow"]
    majority = reports["majority"]
    assert slow.tier_fraction(1) >= majority.tier_fraction(1)
    assert slow.buffer_area_um2 <= majority.buffer_area_um2 + 1e-9


def test_ablation_eco_repartitioning(benchmark, tight_period):
    """Algorithm 1 must not make things worse, and usually closes timing."""
    lib12, lib9 = make_library_pair()
    scale = min(0.4, default_scale())

    def both():
        out = {}
        for eco in (False, True):
            _d, r = run_flow_hetero_3d(
                "cpu", lib12, lib9, period_ns=tight_period, scale=scale,
                seed=1, repartition=eco, opt_iterations=8,
            )
            out[eco] = r.wns_ns
        return out

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(
        "Ablation: ECO repartitioning (CPU)",
        f"without: WNS {results[False]:+.3f} ns\n"
        f"with:    WNS {results[True]:+.3f} ns",
    )
    # ECO must not materially hurt; it trades a slightly tighter pre-ECO
    # sizing budget for the ability to move cells, so tiny regressions at
    # some scales are tolerated.
    assert results[True] >= results[False] - 0.05
