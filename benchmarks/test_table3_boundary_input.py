"""Benchmark: regenerate Table III (FO-4 heterogeneity at the driver input)."""

from conftest import emit

from repro.experiments.tables import table3_input_boundary


def pct(a, b):
    return (a - b) / b * 100.0


def test_table3_boundary_input(benchmark):
    rows = benchmark(table3_input_boundary)
    by_label = {r.label: r for r in rows}
    fast_base = by_label["fast Case-I"]
    fast_mix = by_label["fast Case-II"]
    slow_base = by_label["slow Case-I"]
    slow_mix = by_label["slow Case-II"]

    lines = [
        f"{'':12s}{'f/f':>10s}{'f<-slow':>10s}{'d%':>8s}"
        f"{'s/s':>10s}{'s<-fast':>10s}{'d%':>8s}"
    ]
    for attr, label in (
        ("rise_slew_ps", "Rise Slew"),
        ("fall_slew_ps", "Fall Slew"),
        ("rise_delay_ps", "Rise Del."),
        ("fall_delay_ps", "Fall Del."),
        ("leakage_uw", "Lkg. Pow."),
        ("total_power_uw", "Total Pow."),
    ):
        fb, fm = getattr(fast_base, attr), getattr(fast_mix, attr)
        sb, sm = getattr(slow_base, attr), getattr(slow_mix, attr)
        lines.append(
            f"{label:12s}{fb:10.3f}{fm:10.3f}{pct(fm, fb):8.1f}"
            f"{sb:10.3f}{sm:10.3f}{pct(sm, sb):8.1f}"
        )
    emit("Table III: heterogeneity at driver input (time ps, power uW)",
         "\n".join(lines))

    # Underdriven fast gate: slightly slower everywhere (paper: +3..+8%).
    for attr in ("rise_slew_ps", "fall_slew_ps", "rise_delay_ps",
                 "fall_delay_ps"):
        delta = pct(getattr(fast_mix, attr), getattr(fast_base, attr))
        assert 0 < delta < 15, (attr, delta)
    # Overdriven slow gate: slightly faster everywhere (paper: -5..-10%).
    for attr in ("rise_slew_ps", "fall_slew_ps", "rise_delay_ps",
                 "fall_delay_ps"):
        delta = pct(getattr(slow_mix, attr), getattr(slow_base, attr))
        assert -15 < delta < 0, (attr, delta)

    # The leakage asymmetry is the table's headline: a huge increase for
    # fast cells driven from the low rail (paper +250%), a moderate
    # decrease for the converse (paper -44.9%).
    up = pct(fast_mix.leakage_uw, fast_base.leakage_uw)
    down = pct(slow_mix.leakage_uw, slow_base.leakage_uw)
    assert 150 < up < 400, up
    assert -70 < down < -20, down

    # Total power moves mildly (paper: +9.2% / -0.6%).
    assert 0 < pct(fast_mix.total_power_uw, fast_base.total_power_uw) < 20
    assert abs(pct(slow_mix.total_power_uw, slow_base.total_power_uw)) < 5
