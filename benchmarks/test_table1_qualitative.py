"""Benchmark: regenerate Table I (qualitative PPAC ranks of the 5 configs)."""

from conftest import emit

from repro.experiments.tables import PAPER_TABLE1, table1_qualitative_ranks

CONFIGS = ("2D_9T", "3D_9T", "2D_12T", "3D_12T", "3D_HET")


def test_table1_qualitative(benchmark):
    ranks = benchmark(table1_qualitative_ranks)

    lines = [f"{'metric':16s}" + "".join(f"{c:>9s}" for c in CONFIGS)]
    for metric in PAPER_TABLE1:
        ours = "".join(f"{ranks[metric][c]:9d}" for c in CONFIGS)
        paper = "".join(f"{PAPER_TABLE1[metric][c]:9d}" for c in CONFIGS)
        lines.append(f"{metric:16s}" + ours + "   (ours)")
        lines.append(f"{'':16s}" + paper + "   (paper)")
    emit("Table I: qualitative PPAC ranks (1=worst, 5=best)", "\n".join(lines))

    # Rows our physical model reproduces exactly:
    assert ranks["frequency"] == PAPER_TABLE1["frequency"]
    assert ranks["power"] == PAPER_TABLE1["power"]
    assert ranks["die_cost"] == PAPER_TABLE1["die_cost"]
    si = ranks["si_area"]
    assert si["2D_9T"] == si["3D_9T"]  # equal Si area, as the paper marks
    assert si["2D_12T"] == si["3D_12T"]
    assert si["2D_9T"] > si["3D_HET"] > si["2D_12T"]

    # Rows where the paper's hand-assigned ranks conflict with its own
    # quantitative tables (footprint: 2D-9T above 3D-12T despite 0.75 vs
    # 0.50 relative outlines) -- we assert the load-bearing relations only
    # and document the deviation in EXPERIMENTS.md.
    ppf = ranks["power_per_freq"]
    assert ppf["3D_HET"] > ppf["3D_12T"]  # hetero beats both 12-track...
    assert ppf["3D_HET"] > ppf["2D_12T"]  # ...variants on power/freq
    fp = ranks["footprint"]
    assert fp["3D_9T"] == max(fp.values())
    assert fp["2D_12T"] == min(fp.values())
    assert fp["3D_HET"] > fp["3D_12T"]
