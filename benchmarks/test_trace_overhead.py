"""Tracing-overhead guard: spans must stay effectively free.

The observability layer promises near-zero overhead when tracing is off
(one boolean check per ``span()`` call) and low single-digit-percent
overhead when it is on.  This benchmark times the same small 2-D flow
both ways -- laps interleaved off/on and best-of-N on each side, because
back-to-back blocks pick up run-order effects (frequency scaling, page
cache) far larger than 24 spans of bookkeeping -- and fails if the
traced run costs more than 5% extra wall time.

Runs under ``benchmarks/`` only, never in the tier-1 suite.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.flow.flow2d import run_flow_2d
from repro.liberty.presets import make_twelve_track_library
from repro.obs import trace

#: Small enough to repeat six times, large enough that per-stage fixed
#: costs (where span bookkeeping lives) do not vanish in the noise.
SCALE = 0.2
REPEATS = 5
MAX_OVERHEAD = 1.05

_LIB = make_twelve_track_library()


def _lap(traced: bool) -> float:
    if traced:
        trace.enable_tracing()
    else:
        trace.disable_tracing()
    trace.reset_trace()  # identical span bookkeeping every traced lap
    t0 = time.perf_counter()
    run_flow_2d("aes", _LIB, period_ns=0.7, scale=SCALE, seed=7)
    return time.perf_counter() - t0


def test_tracing_overhead_under_five_percent():
    trace.disable_tracing()
    try:
        _lap(False)  # warm every lazy import/cache outside the clock
        offs, ons = [], []
        for _ in range(REPEATS):
            offs.append(_lap(False))
            ons.append(_lap(True))
        off, on = min(offs), min(ons)
    finally:
        trace.disable_tracing()
        trace.reset_trace()
    ratio = on / off
    emit(
        "tracing overhead (aes 2D_12T, scale %.2f)" % SCALE,
        f"off {off * 1e3:8.1f} ms\n"
        f"on  {on * 1e3:8.1f} ms\n"
        f"ratio {ratio:.4f} (limit {MAX_OVERHEAD:.2f})",
    )
    assert ratio < MAX_OVERHEAD, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (MAX_OVERHEAD - 1):.0f}% budget"
    )
