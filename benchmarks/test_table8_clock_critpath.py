"""Benchmark: regenerate Table VIII (clock / critical path / memory nets).

The CPU design under the best 2-D (12-track), the best homogeneous 3-D
(12-track), and the heterogeneous 3-D implementation.
"""

from conftest import emit

from repro.experiments.tables import format_table, table8_detailed_analysis


def test_table8_detailed_analysis(benchmark, matrix):
    rows = benchmark(table8_detailed_analysis, matrix)
    emit("Table VIII: clock network, critical path, memory interconnects (CPU)",
         format_table(rows, ""))

    two_d = rows["2D_12T"]
    homo = rows["3D_12T"]
    het = rows["3D_HET"]

    # -- memory interconnects: 3-D shortens them, hetero the most --------
    assert homo["mem_input_net_latency_ps"] <= two_d["mem_input_net_latency_ps"]
    assert het["mem_net_switching_uw"] <= two_d["mem_net_switching_uw"]

    # -- clock network ----------------------------------------------------
    # hetero's clock buffer area is the smallest (9-track buffers)
    assert het["clock_buffer_area_um2"] <= homo["clock_buffer_area_um2"]
    # the hetero tree leans on the top die (paper: >75%; we assert majority)
    top = het["clock_buffers_top"]
    bottom = het["clock_buffers_bottom"]
    assert top >= bottom
    # insertion delay suffers on the slower tier (paper: 0.713 vs 0.292)
    assert het["clock_max_latency_ns"] >= homo["clock_max_latency_ns"] * 0.7

    # -- critical path ----------------------------------------------------
    # same clock period across the three implementations (iso-performance)
    assert two_d["crit_clock_period_ns"] == het["crit_clock_period_ns"]
    # the hetero path leans on the fast bottom die (paper: 25 of 33 cells)
    assert het["crit_bottom_cells"] >= het["crit_top_cells"]
    # homogeneous 3-D splits roughly evenly
    homo_split = homo["crit_top_cells"] / max(
        1, homo["crit_top_cells"] + homo["crit_bottom_cells"]
    )
    assert 0.2 <= homo_split <= 0.8
    # the slow tier's average stage delay is visibly larger (paper: ~2.3x)
    if het["crit_top_cells"] >= 2:
        assert (
            het["crit_avg_top_delay_ns"]
            > 1.2 * het["crit_avg_bottom_delay_ns"]
        )
    # path delay consistency: cells + wires == path delay
    for row in rows.values():
        assert abs(
            row["crit_cell_delay_ns"] + row["crit_wire_delay_ns"]
            - row["crit_path_delay_ns"]
        ) < 1e-6
