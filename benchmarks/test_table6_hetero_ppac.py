"""Benchmark: regenerate Table VI (raw PPAC of the heterogeneous designs).

Absolute values are scale-dependent (our netlists are ~50x smaller than
the paper's, so powers are milliwatts and die costs nano-C'); the checks
pin the *relations* Table VI's prose highlights.
"""

from conftest import emit

from repro.experiments.tables import format_table, table6_hetero_ppac


def test_table6_hetero_ppac(benchmark, matrix):
    rows = benchmark(table6_hetero_ppac, matrix)
    emit("Table VI: heterogeneous 3-D PPAC (raw, at repro scale)",
         format_table(rows, ""))

    # Timing-met criterion: |WNS| within ~7% of the period.  AES (the
    # paper's own worst case: symmetric paths defeat criticality
    # separation) and netcard keep a residual violation at repro scale;
    # both deviations are documented in EXPERIMENTS.md.
    bounds = {"aes": 0.65, "netcard": 0.40, "ldpc": 0.10, "cpu": 0.15}
    for design, row in rows.items():
        period = 1.0 / row["frequency_ghz"]
        assert row["wns_ns"] >= -bounds[design] * period, (
            design, row["wns_ns"],
        )
        assert row["tns_ns"] <= 0.0
        # sanity of every reported quantity
        assert row["si_area_mm2"] > 0
        assert row["wl_mm"] > 0
        assert row["mivs"] > 0
        assert row["total_power_mw"] > 0
        assert row["die_cost_1e6"] > 0
        assert row["ppc"] > 0
        assert 40 <= row["density_pct"] <= 95

    # Cross-design relations the paper calls out:
    # netcard and cpu are the big designs (largest footprints)...
    widths = {d: rows[d]["chip_width_um"] for d in rows}
    assert min(widths["netcard"], widths["cpu"]) > max(
        widths["aes"], widths["ldpc"]
    ) * 0.9
    # ...aes is among the fastest designs and well above netcard/cpu
    # (paper: 3.0 GHz vs 1.75/1.2; at repro scale the generated LDPC is
    # shallower than the real RTL and edges ahead -- EXPERIMENTS.md)
    freqs = {d: rows[d]["frequency_ghz"] for d in rows}
    assert freqs["aes"] > freqs["netcard"]
    assert freqs["aes"] > freqs["cpu"]
    # LDPC is the congestion-limited design: its density sits clearly
    # below the cell-dominated netcard/AES (paper: 64 vs 82/86; the CPU's
    # memory-over-logic floorplan also prints low at repro scale)
    densities = {d: rows[d]["density_pct"] for d in rows}
    assert densities["ldpc"] < densities["netcard"] - 3
    assert densities["ldpc"] < densities["aes"] - 3
