"""Benchmark: regenerate Fig. 4 (clock tree, memory nets, critical path).

The figure overlays clock wiring, memory-macro nets, and the critical
path on the 2-D and heterogeneous-3-D CPU layouts; this regenerates the
quantities those overlays visualize.
"""

from conftest import emit

from repro.experiments.figures import fig4_overlays


def test_fig4_overlays(benchmark, matrix):
    rows = benchmark(fig4_overlays, matrix)
    lines = []
    for config, row in rows.items():
        lines.append(f"-- {config} --")
        for key, value in row.items():
            lines.append(f"  {key:28s} {value:10.3f}")
    emit("Fig. 4: overlay data (clock / memory nets / critical path)",
         "\n".join(lines))

    two_d = rows["2D_12T"]
    het = rows["3D_HET"]
    # (a) the clock tree serves every sink in both implementations
    assert het["clock_sink_count"] == two_d["clock_sink_count"]
    assert het["clock_buffer_count"] > 0
    # (b) memory nets shorten in 3-D (the figure's visual point)
    assert het["mem_output_latency_ps"] <= two_d["mem_output_latency_ps"] * 1.2
    # (c) both critical paths are real register-to-register paths
    assert het["crit_path_cells"] > 3
    assert two_d["crit_path_cells"] > 3
