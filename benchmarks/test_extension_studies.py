"""Benchmarks for the paper's extension studies.

Three studies the paper calls for but does not run:

1. **PDN / IR drop** (Section V: "a thorough study of the power delivery
   networks for heterogeneous 3-D ICs is required").
2. **Level shifters** (Section III-B argues they are too costly at
   monolithic interconnect density -- here the cost is measured).
3. **Technology-mix exploration** (Section V: "more exploration is
   beneficial").
"""

import pytest
from conftest import emit

from repro.experiments.explorer import explore_track_pairs
from repro.experiments.runner import default_scale
from repro.flow import run_flow_hetero_3d
from repro.flow.levelshift import boundary_violations
from repro.liberty.presets import make_library_pair, make_track_variant
from repro.pdn import PdnConfig, analyze_pdn


def test_pdn_study(benchmark, matrix):
    """IR drop of the CPU in homogeneous vs heterogeneous 3-D.

    The top die is fed through power vias, so it always drops more than
    the pad-fed bottom die; the heterogeneous stack's low-power 9-track
    die draws less current, which softens exactly that penalty.
    """
    homo = matrix.designs[("cpu", "3D_12T")]
    het = matrix.designs[("cpu", "3D_HET")]
    # emulate paper-scale current density (the paper's CPU is ~50x bigger)
    scale_factor = 150_000 / max(1, len(het.netlist.instances))

    def run():
        return {
            "3D_12T": analyze_pdn(homo, current_scale=scale_factor),
            "3D_HET": analyze_pdn(het, current_scale=scale_factor),
        }

    reports = benchmark(run)
    lines = []
    for config, report in reports.items():
        for tier, tr in sorted(report.tiers.items()):
            lines.append(
                f"{config} tier{tier} ({tr.vdd_v:.2f} V): "
                f"I={tr.total_current_ma:8.1f} mA, "
                f"worst drop {tr.worst_drop_mv:6.2f} mV "
                f"({tr.worst_drop_fraction:.2%})"
            )
    emit("Extension: PDN IR-drop study (CPU, paper-scale currents)",
         "\n".join(lines))

    for config, report in reports.items():
        # the via-fed top tier always drops more than the pad-fed bottom
        assert (
            report.tiers[1].worst_drop_mv >= report.tiers[0].worst_drop_mv
        ), config
    # the hetero top die draws less current than the homogeneous one
    assert (
        reports["3D_HET"].tiers[1].total_current_ma
        < reports["3D_12T"].tiers[1].total_current_ma
    )


def test_level_shifter_study(benchmark):
    """PPA cost of violating the voltage rule and shifting every crossing."""
    lib12, _lib9 = make_library_pair()
    low = make_track_variant(9, vdd_v=0.55)  # gap 0.35 V > Vth: illegal
    scale = min(0.4, default_scale())

    def run():
        d_rule, r_rule = run_flow_hetero_3d(
            "netcard", lib12, make_track_variant(9), period_ns=0.8,
            scale=scale, seed=3,
        )
        d_ls, r_ls = run_flow_hetero_3d(
            "netcard", lib12, low, period_ns=0.8, scale=scale, seed=3,
            allow_level_shifters=True,
        )
        return (d_rule, r_rule), (d_ls, r_ls)

    (d_rule, r_rule), (d_ls, r_ls) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "Extension: level-shifter cost study (netcard)",
        f"voltage-rule pair (0.90/0.81 V): WNS {r_rule.wns_ns:+.3f} ns, "
        f"power {r_rule.total_power_mw:.3f} mW, 0 shifters\n"
        f"large-gap pair (0.90/0.55 V):   WNS {r_ls.wns_ns:+.3f} ns, "
        f"power {r_ls.total_power_mw:.3f} mW, "
        f"{d_ls.notes.get('level_shifters', 0):.0f} shifters",
    )
    # insertion actually happened and left no illegal crossing behind
    assert d_ls.notes.get("level_shifters", 0) > 0
    assert boundary_violations(d_ls) == []
    # and the rule-compliant pair needs none
    assert boundary_violations(d_rule) == []
    # the paper's argument: the large-gap stack pays for its shifters
    assert r_ls.wns_ns <= r_rule.wns_ns + 0.02
    assert r_ls.total_power_mw > r_rule.total_power_mw


def test_track_mix_exploration(benchmark):
    """Sweep track pairs; the published 9+12 choice must rank well."""
    scale = min(0.4, default_scale())

    def run():
        return explore_track_pairs(
            "aes", (8, 9, 10, 12), period_ns=0.55, scale=scale, seed=2,
            opt_iterations=6,
        )

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: technology-mix exploration (AES)",
        "\n".join(
            f"{p.label:8s} "
            + (
                f"PPC {p.ppc:10.1f}, power {p.result.total_power_mw:6.3f} mW, "
                f"WNS {p.result.wns_ns:+.3f}"
                if p.result
                else "incompatible (needs level shifters)"
            )
            for p in pairs
        ),
    )
    ran = [p for p in pairs if p.result is not None]
    assert len(ran) >= 4
    # every compatible pair satisfies the Section II-B voltage rule
    assert all(p.compatible for p in ran)
    # the published 9+12 mix lands in the upper half of the ranking
    labels = [p.label for p in ran]
    assert "9+12T" in labels
    assert labels.index("9+12T") <= len(ran) // 2
