"""Benchmark: regenerate Table V (Pin-3D vs Hetero-Pin-3D on the CPU).

The paper's Table V runs the heterogeneous technology stack through plain
Pin-3D (no timing partitioning, no 3-D clock stage, no repartitioning)
and through the enhanced Hetero-Pin-3D flow at the same 1.2 GHz target:
the enhancements close timing (WNS -0.489 -> -0.060 ns) and cut power
(224.1 -> 198.8 mW) at essentially unchanged wirelength.
"""

from conftest import emit

from repro.experiments.runner import default_scale, find_target_period
from repro.experiments.tables import table5_flow_improvement


def test_table5_flow_improvement(benchmark, matrix):
    scale = default_scale()
    rows = benchmark.pedantic(
        lambda: table5_flow_improvement(scale=scale, seed=1),
        rounds=1,
        iterations=1,
    )
    plain = rows["pin3d"]
    hetero = rows["hetero_pin3d"]

    lines = [f"{'':14s}{'Pin-3D [5]':>14s}{'Hetero-Pin-3D':>16s}"]
    for key, label in (
        ("frequency_ghz", "Frequency GHz"),
        ("wl_mm", "WL mm"),
        ("wns_ns", "WNS ns"),
        ("total_power_mw", "Power mW"),
    ):
        lines.append(f"{label:14s}{plain[key]:14.3f}{hetero[key]:16.3f}")
    emit("Table V: heterogeneous flow enhancements (CPU)", "\n".join(lines))

    # Same frequency target in both flows.
    assert plain["frequency_ghz"] == hetero["frequency_ghz"]
    # Enhancements improve timing closure...
    assert hetero["wns_ns"] >= plain["wns_ns"]
    # ...and do not blow up wirelength (paper: 3.22 vs 3.23 mm).
    assert hetero["wl_mm"] < plain["wl_mm"] * 1.35
