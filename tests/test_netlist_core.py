"""Tests for the netlist database (repro.netlist.core)."""

import pytest

from repro.errors import NetlistError
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_twelve_track_library
from repro.netlist.core import Netlist, PortDirection


@pytest.fixture(scope="module")
def lib():
    return make_twelve_track_library()


@pytest.fixture
def simple(lib):
    """clk -> FF -> INV -> INV -> FF, with one primary input."""
    nl = Netlist("simple")
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nl.add_port("din", PortDirection.INPUT)
    ff_in = nl.add_instance("ff_in", lib.get(CellFunction.DFF, 1))
    inv1 = nl.add_instance("inv1", lib.get(CellFunction.INV, 1))
    inv2 = nl.add_instance("inv2", lib.get(CellFunction.INV, 2))
    ff_out = nl.add_instance("ff_out", lib.get(CellFunction.DFF, 1))
    nl.add_net("q0")
    nl.add_net("n1")
    nl.add_net("n2")
    nl.connect("din", "ff_in", "D")
    nl.connect("clk", "ff_in", "CK")
    nl.connect("q0", "ff_in", "Q")
    nl.connect("q0", "inv1", "A")
    nl.connect("n1", "inv1", "Y")
    nl.connect("n1", "inv2", "A")
    nl.connect("n2", "inv2", "Y")
    nl.connect("n2", "ff_out", "D")
    nl.connect("clk", "ff_out", "CK")
    return nl


class TestConstruction:
    def test_valid_design_validates(self, simple, lib):
        # ff_out.Q dangles which is fine; all inputs connected
        simple.add_net("qo")
        simple.connect("qo", "ff_out", "Q")
        simple.validate()

    def test_duplicate_port_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add_port("din", PortDirection.INPUT)

    def test_second_clock_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add_port("clk2", PortDirection.INPUT, is_clock=True)

    def test_output_clock_rejected(self, lib):
        nl = Netlist("x")
        with pytest.raises(NetlistError):
            nl.add_port("co", PortDirection.OUTPUT, is_clock=True)

    def test_duplicate_instance_rejected(self, simple, lib):
        with pytest.raises(NetlistError):
            simple.add_instance("inv1", lib.get(CellFunction.INV, 1))

    def test_duplicate_net_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add_net("n1")


class TestConnectivity:
    def test_driver_and_sinks_recorded(self, simple):
        net = simple.nets["n1"]
        assert net.driver == ("inv1", "Y")
        assert ("inv2", "A") in net.sinks
        assert net.fanout == 1

    def test_double_driver_rejected(self, simple, lib):
        simple.add_instance("spare", lib.get(CellFunction.INV, 1))
        with pytest.raises(NetlistError):
            simple.connect("n1", "spare", "Y")

    def test_double_connection_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.connect("n2", "inv2", "A")

    def test_unknown_pin_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.connect("n1", "inv2", "Z")

    def test_disconnect_then_reconnect(self, simple):
        simple.disconnect("inv2", "A")
        assert simple.nets["n1"].fanout == 0
        simple.connect("n1", "inv2", "A")
        assert simple.nets["n1"].fanout == 1

    def test_disconnect_unconnected_rejected(self, simple, lib):
        simple.add_instance("spare", lib.get(CellFunction.INV, 1))
        with pytest.raises(NetlistError):
            simple.disconnect("spare", "A")

    def test_remove_instance_unbinds(self, simple):
        simple.remove_instance("inv2")
        assert simple.nets["n1"].fanout == 0
        assert simple.nets["n2"].driver is None

    def test_remove_net_requires_empty(self, simple):
        with pytest.raises(NetlistError):
            simple.remove_net("n1")
        simple.disconnect("inv1", "Y")
        simple.disconnect("inv2", "A")
        simple.remove_net("n1")
        assert "n1" not in simple.nets

    def test_fanout_fanin_iteration(self, simple):
        fanout = [i.name for i in simple.fanout_instances("inv1")]
        assert fanout == ["inv2"]
        fanin = [i.name for i in simple.fanin_instances("inv2")]
        assert fanin == ["inv1"]


class TestRebind:
    def test_rebind_same_function(self, simple, lib):
        simple.rebind("inv1", lib.get(CellFunction.INV, 8))
        assert simple.instances["inv1"].cell.drive == 8
        simple.validate()

    def test_rebind_missing_pin_rejected(self, simple, lib):
        # a DFF has no 'A' or 'Y' pin, so the inverter's bindings break
        with pytest.raises(NetlistError):
            simple.rebind("inv1", lib.get(CellFunction.DFF, 1))


class TestTraversal:
    def test_topological_order(self, simple):
        order = [i.name for i in simple.topological_order()]
        assert order.index("inv1") < order.index("inv2")
        assert "ff_in" not in order  # sequential cells are sources

    def test_combinational_loop_detected(self, lib):
        nl = Netlist("loop")
        a = nl.add_instance("a", lib.get(CellFunction.INV, 1))
        b = nl.add_instance("b", lib.get(CellFunction.INV, 1))
        nl.add_net("na")
        nl.add_net("nb")
        nl.connect("na", "a", "Y")
        nl.connect("na", "b", "A")
        nl.connect("nb", "b", "Y")
        nl.connect("nb", "a", "A")
        with pytest.raises(NetlistError):
            nl.topological_order()

    def test_sequential_and_combinational_split(self, simple):
        seq = {i.name for i in simple.sequential_instances()}
        comb = {i.name for i in simple.combinational_instances()}
        assert seq == {"ff_in", "ff_out"}
        assert comb == {"inv1", "inv2"}

    def test_clock_sinks(self, simple):
        sinks = dict(simple.clock_sinks())
        assert sinks == {"ff_in": "CK", "ff_out": "CK"}


class TestTiersAndAreas:
    def test_tier_area(self, simple):
        simple.instances["inv1"].tier = 1
        a1 = simple.tier_area_um2(1)
        assert a1 == pytest.approx(simple.instances["inv1"].area_um2)
        assert simple.tiers_used() == (0, 1)

    def test_cut_nets(self, simple):
        assert simple.cut_nets() == []
        simple.instances["inv2"].tier = 1
        cut = {n.name for n in simple.cut_nets()}
        assert cut == {"n1", "n2"}  # inv1(Y,t0)->inv2(t1), inv2(t1)->ff_out(t0)


class TestValidation:
    def test_floating_input_detected(self, simple, lib):
        simple.add_instance("lonely", lib.get(CellFunction.INV, 1))
        with pytest.raises(NetlistError):
            simple.validate()

    def test_undriven_net_detected(self, simple):
        simple.add_net("dangling")
        simple.connect("dangling", "ff_out", "Q") if False else None
        with pytest.raises(NetlistError):
            simple.validate()


class TestMisc:
    def test_unique_name(self, simple):
        name = simple.unique_name("inv")
        assert name not in simple.instances
        assert name not in simple.nets

    def test_summary(self, simple):
        s = simple.summary()
        assert s["instances"] == 4
        assert s["sequential"] == 2

    def test_center_requires_placement(self, simple):
        with pytest.raises(NetlistError):
            simple.instances["inv1"].center()
        simple.instances["inv1"].x_um = 1.0
        simple.instances["inv1"].y_um = 2.0
        cx, cy = simple.instances["inv1"].center()
        assert cx > 1.0 and cy > 2.0
