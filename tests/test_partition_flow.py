"""Tests for bin-based FM, timing-driven pinning (repro.partition)."""

import pytest

from repro.errors import PartitionError
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.partition.bins import bin_fm_partition
from repro.partition.timing_driven import timing_based_pinning
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place
from repro.timing.delaycalc import DelayCalculator, PlacementWireModel
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def placed_cpu(pair):
    lib12, _ = pair
    nl = generate_netlist("cpu", lib12, scale=0.4, seed=5)
    # mirror the 3-D flows: macros alternate tiers for balanced blockage
    for i, macro in enumerate(sorted(nl.memory_macros(), key=lambda m: m.name)):
        macro.tier = i % 2
    fp = build_floorplan(nl, {0: lib12, 1: lib12}, utilization=0.75,
                         demand_scale=0.5)
    global_place(nl, fp, area_scale=0.5)
    return nl, fp, lib12


class TestBinFM:
    def test_every_instance_assigned(self, placed_cpu):
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas
        )
        assert set(assignment) >= set(nl.instances)
        assert set(assignment.values()) <= {0, 1}

    def test_areas_balanced(self, placed_cpu):
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas
        )
        a = [0.0, 0.0]
        for name, inst in nl.instances.items():
            if inst.cell.is_macro:
                continue
            a[assignment[name]] += inst.area_um2
        total = sum(a)
        assert abs(a[0] - total / 2) < 0.2 * total

    def test_local_balance_within_bins(self, placed_cpu):
        """Both tiers share the footprint: every region must balance.

        Macro blockage counts as occupied area on its own tier, so the
        quadrant accounting includes it -- that is exactly why a logic-
        over-memory partition is balanced even though the standard cells
        are lopsided there.
        """
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas, grid=4
        )
        quad = {}
        for name, inst in nl.instances.items():
            if inst.cell.is_macro:
                continue
            cx, cy = inst.center()
            key = (
                min(1, int(2 * cx / fp.width_um)),
                min(1, int(2 * cy / fp.height_um)),
            )
            sides = quad.setdefault(key, [0.0, 0.0])
            sides[assignment[name]] += inst.area_um2
        # Macros span quadrants; attribute their area by overlap.
        for macro in nl.memory_macros():
            for qx in (0, 1):
                for qy in (0, 1):
                    x0, x1 = qx * fp.width_um / 2, (qx + 1) * fp.width_um / 2
                    y0, y1 = qy * fp.height_um / 2, (qy + 1) * fp.height_um / 2
                    ox = max(0.0, min(x1, macro.x_um + macro.cell.width_um)
                             - max(x0, macro.x_um))
                    oy = max(0.0, min(y1, macro.y_um + macro.cell.height_um)
                             - max(y0, macro.y_um))
                    if ox * oy > 0:
                        sides = quad.setdefault((qx, qy), [0.0, 0.0])
                        sides[assignment[macro.name]] += ox * oy
        # The binding invariant is capacity, not symmetry: no tier may be
        # over-subscribed in any region (macros count as occupied area).
        quadrant_area = fp.area_um2 / 4.0
        for key, (s0, s1) in quad.items():
            assert s0 <= quadrant_area * 1.05, (key, s0)
            assert s1 <= quadrant_area * 1.05, (key, s1)

    def test_pinned_cells_stay(self, placed_cpu):
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        pinned = {name: 0 for name in sorted(nl.instances)[:50]}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas, pinned=pinned
        )
        for name in pinned:
            assert assignment[name] == 0

    def test_macros_default_to_their_tier(self, placed_cpu):
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas
        )
        for macro in nl.memory_macros():
            assert assignment[macro.name] == macro.tier

    def test_cut_fraction_reasonable(self, placed_cpu):
        """Paper: ~15% of nets connect the two tiers in M3D CPUs."""
        nl, fp, _ = placed_cpu
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        assignment = bin_fm_partition(
            nl, fp.width_um, fp.height_um, areas, areas
        )
        for name, tier in assignment.items():
            nl.instances[name].tier = tier
        cut = len(nl.cut_nets())
        assert 0.02 < cut / len(nl.nets) < 0.6

    def test_unplaced_rejected(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=5)
        areas = {n: i.area_um2 for n, i in nl.instances.items()}
        with pytest.raises(PartitionError):
            bin_fm_partition(nl, 100.0, 100.0, areas, areas)


class TestTimingBasedPinning:
    @pytest.fixture()
    def analyzed(self, pair, placed_cpu):
        nl, fp, lib12 = placed_cpu
        calc = DelayCalculator(
            nl, PlacementWireModel(lib12), {l.name: l for l in pair}
        )
        report = run_sta(nl, calc, 1.0, with_cell_slacks=True)
        return nl, report

    def test_pins_most_critical_first(self, analyzed):
        nl, report = analyzed
        pinned = timing_based_pinning(nl, report.cell_slack,
                                      area_cap_fraction=0.25)
        assert pinned
        worst = min(report.cell_slack, key=report.cell_slack.get)
        assert worst in pinned
        assert set(pinned.values()) == {0}

    def test_area_cap_respected(self, analyzed):
        nl, report = analyzed
        for cap in (0.1, 0.25):
            pinned = timing_based_pinning(nl, report.cell_slack,
                                          area_cap_fraction=cap)
            area = sum(nl.instances[n].area_um2 for n in pinned)
            total = nl.cell_area_um2(lambda i: not i.cell.is_macro)
            assert area <= cap * total + 1e-6

    def test_critical_blocks_dominate_pins(self, analyzed):
        """The deep mul block supplies the timing-critical cluster."""
        nl, report = analyzed
        pinned = timing_based_pinning(nl, report.cell_slack,
                                      area_cap_fraction=0.25)
        mul = sum(1 for n in pinned if nl.instances[n].block == "mul")
        assert mul > 0.2 * len(pinned)

    def test_macros_never_pinned(self, analyzed):
        nl, report = analyzed
        slacks = dict(report.cell_slack)
        for macro in nl.memory_macros():
            slacks[macro.name] = -99.0
        pinned = timing_based_pinning(nl, slacks, area_cap_fraction=0.25)
        for macro in nl.memory_macros():
            assert macro.name not in pinned

    def test_bad_cap_rejected(self, analyzed):
        nl, report = analyzed
        with pytest.raises(PartitionError):
            timing_based_pinning(nl, report.cell_slack, area_cap_fraction=0.9)

    def test_empty_slacks_give_empty_pinning(self, placed_cpu):
        nl, _fp, _lib = placed_cpu
        assert timing_based_pinning(nl, {}) == {}
