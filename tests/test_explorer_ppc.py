"""Regression: a not-run track pair must never rank as PPC == 0.0.

``PairResult.ppc`` used to return a ``0.0`` sentinel for incompatible
(never-run) pairs, which any ``min()``/sort over the exploration read
as a real -- catastrophically bad -- PPC value.  Not-run is ``None``
now, and ranking keeps every evaluated pair ahead of every not-run one.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.explorer import PairResult
from repro.flow.report import FlowResult


def _result(ppc_value: float) -> FlowResult:
    """A structurally complete FlowResult with the given PPC."""
    values = {}
    for f in dataclasses.fields(FlowResult):
        if f.type == "str":
            values[f.name] = "x"
        elif f.type == "int":
            values[f.name] = 1
        elif f.type == "float":
            values[f.name] = 1.0
        else:
            values[f.name] = None
    values.update(design="aes", config="3D_HET", ppc=ppc_value)
    return FlowResult(**values)


def test_not_run_pair_has_no_ppc():
    pair = PairResult(12, 8, False, None)
    assert pair.ppc is None


def test_run_pair_reports_real_ppc():
    pair = PairResult(12, 8, True, _result(250.0))
    assert pair.ppc == 250.0


def test_ranking_excludes_not_run_pairs():
    """Every evaluated pair outranks every not-run pair -- even one
    with a worse-than-zero-sentinel PPC -- and evaluated pairs stay in
    best-first order (the old 0.0 sentinel inverted both properties)."""
    pairs = [
        PairResult(12, 8, False, None),
        PairResult(12, 9, True, _result(0.5)),   # worse than the old sentinel
        PairResult(12, 10, True, _result(900.0)),
        PairResult(10, 8, False, None),
    ]
    pairs.sort(
        key=lambda p: (p.ppc is None, -(p.ppc if p.ppc is not None else 0.0))
    )
    labels = [p.label for p in pairs]
    assert labels[:2] == ["10+12T", "9+12T"]
    assert all(p.ppc is None for p in pairs[2:])
    # min() over ranked pairs can no longer be poisoned by a sentinel.
    ranked = [p.ppc for p in pairs if p.ppc is not None]
    assert min(ranked) == 0.5
