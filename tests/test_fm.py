"""Tests for FM min-cut bipartitioning (repro.partition.fm)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.partition.fm import fm_bipartition


def uniform_areas(cells, value=1.0):
    return {c: value for c in cells}


def cut_of(nets, assignment):
    return sum(
        1 for net in nets if len({assignment[c] for c in net if c in assignment}) > 1
    )


class TestBasics:
    def test_two_cliques_separate(self):
        """Two 4-cliques joined by one edge: optimal cut is 1."""
        cells = [f"a{i}" for i in range(4)] + [f"b{i}" for i in range(4)]
        nets = []
        for grp in ("a", "b"):
            members = [f"{grp}{i}" for i in range(4)]
            nets.extend([members[i], members[j]] for i in range(4) for j in range(i + 1, 4))
        nets.append(["a0", "b0"])
        # worst-case initial assignment: interleaved
        initial = {c: i % 2 for i, c in enumerate(cells)}
        result = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial,
        )
        assert result.cut_size == 1
        assert {result.side(f"a{i}") for i in range(4)} == {result.side("a0")}
        assert result.side("a0") != result.side("b0")

    def test_balance_respected(self):
        cells = [f"c{i}" for i in range(20)]
        nets = [[f"c{i}", f"c{(i + 1) % 20}"] for i in range(20)]
        initial = {c: i % 2 for i, c in enumerate(cells)}
        result = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial, balance_tolerance=0.1,
        )
        a0, a1 = result.area
        total = a0 + a1
        assert abs(a0 - total / 2) <= 0.1 * total + 1.0

    def test_fixed_cells_never_move(self):
        cells = [f"c{i}" for i in range(10)]
        nets = [[f"c{i}", f"c{i+1}"] for i in range(9)]
        initial = {c: i % 2 for i, c in enumerate(cells)}
        fixed = {"c0", "c5"}
        result = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial, fixed=fixed,
        )
        assert result.side("c0") == initial["c0"]
        assert result.side("c5") == initial["c5"]

    def test_refinement_never_worsens_cut(self):
        import random

        rng = random.Random(42)
        cells = [f"c{i}" for i in range(60)]
        nets = [
            rng.sample(cells, rng.randint(2, 5)) for _ in range(120)
        ]
        initial = {c: i % 2 for i, c in enumerate(cells)}
        before = cut_of(nets, initial)
        result = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial,
        )
        assert result.cut_size <= before

    def test_deterministic(self):
        import random

        rng = random.Random(7)
        cells = [f"c{i}" for i in range(40)]
        nets = [rng.sample(cells, 3) for _ in range(80)]
        initial = {c: i % 2 for i, c in enumerate(cells)}
        r1 = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial,
        )
        r2 = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial,
        )
        assert r1.assignment == r2.assignment


class TestSideDependentAreas:
    def test_asymmetric_areas_balance_in_own_metric(self):
        """Side 1 cells shrink to 75%: more cells migrate to side 1."""
        cells = [f"c{i}" for i in range(40)]
        nets = [[f"c{i}", f"c{(i + 7) % 40}"] for i in range(40)]
        a0 = uniform_areas(cells, 1.0)
        a1 = uniform_areas(cells, 0.75)
        initial = {c: i % 2 for i, c in enumerate(cells)}
        result = fm_bipartition(cells, nets, a0, a1, initial=initial,
                                balance_tolerance=0.05)
        n1 = sum(1 for c in cells if result.side(c) == 1)
        n0 = len(cells) - n1
        # areas balanced in own metrics => n0 * 1.0 ~= n1 * 0.75
        assert n1 > n0


class TestErrors:
    def test_missing_initial_rejected(self):
        with pytest.raises(PartitionError):
            fm_bipartition(
                ["a", "b"], [["a", "b"]], {"a": 1, "b": 1}, {"a": 1, "b": 1},
                initial={"a": 0},
            )

    def test_duplicate_cells_rejected(self):
        with pytest.raises(PartitionError):
            fm_bipartition(
                ["a", "a"], [], {"a": 1}, {"a": 1}, initial={"a": 0}
            )

    def test_empty_rejected(self):
        """An empty cell list fails fast with the dedicated message, not a
        downstream KeyError/ZeroDivision from the area bookkeeping."""
        with pytest.raises(PartitionError, match="nothing to partition"):
            fm_bipartition([], [], {}, {}, initial={})

    def test_single_cell_is_a_valid_partition(self):
        result = fm_bipartition(
            ["only"], [], {"only": 2.0}, {"only": 1.5}, initial={"only": 0}
        )
        assert result.assignment == {"only": 0}
        assert result.cut_size == 0
        assert result.area == (2.0, 0.0)

    def test_single_fixed_cell(self):
        result = fm_bipartition(
            ["only"], [["only"]], {"only": 1.0}, {"only": 1.0},
            initial={"only": 1}, fixed={"only"},
        )
        assert result.assignment == {"only": 1}
        assert result.cut_size == 0


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_assignment_is_total_and_binary(self, n, seed):
        import random

        rng = random.Random(seed)
        cells = [f"c{i}" for i in range(n)]
        nets = [rng.sample(cells, min(n, rng.randint(2, 4))) for _ in range(2 * n)]
        initial = {c: i % 2 for i, c in enumerate(cells)}
        result = fm_bipartition(
            cells, nets, uniform_areas(cells), uniform_areas(cells),
            initial=initial,
        )
        assert set(result.assignment) == set(cells)
        assert set(result.assignment.values()) <= {0, 1}
        assert result.cut_size == cut_of(nets, result.assignment)
