"""Write-ahead journal: framing, replay, truncation tolerance, compaction.

The hypothesis suite is the heart of the crash-safety argument: a
journal truncated at *any* byte offset -- a torn write frozen at an
arbitrary instant -- must replay to the queue the longest valid record
prefix describes, never to an exception, never with a record the prefix
does not contain.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.journal import Journal, JournalError, replay_file, verify_line
from repro.serve.queue import DONE, FAILED, PENDING, RUNNING, JobQueue


def _open(tmp_path, name="j.wal"):
    journal = Journal(tmp_path / name)
    records = journal.open()
    return journal, records


def test_append_then_replay_round_trips(tmp_path):
    journal, records = _open(tmp_path)
    assert records == []
    journal.append("submit", job_id="a", spec={"kind": "probe"})
    journal.append("claim", job_id="a", worker="w0")
    journal.close()

    replayed, valid, dropped = replay_file(journal.path)
    assert dropped == 0
    assert valid == journal.path.stat().st_size
    assert [r["type"] for r in replayed] == ["submit", "claim"]
    assert replayed[0]["job_id"] == "a"
    assert [r["seq"] for r in replayed] == [0, 1]


def test_seq_continues_after_reopen(tmp_path):
    journal, _ = _open(tmp_path)
    journal.append("submit", job_id="a")
    journal.close()
    journal2, records = _open(tmp_path)
    assert len(records) == 1
    record = journal2.append("submit", job_id="b")
    assert record["seq"] == 1
    journal2.close()


def test_missing_file_is_empty_journal(tmp_path):
    records, valid, dropped = replay_file(tmp_path / "absent.wal")
    assert records == [] and valid == 0 and dropped == 0


def test_torn_tail_is_dropped_and_truncated(tmp_path):
    journal, _ = _open(tmp_path)
    journal.append("submit", job_id="a")
    journal.append("submit", job_id="b")
    journal.close()
    # Tear the final record mid-line, as a kill -9 during write would.
    data = journal.path.read_bytes()
    journal.path.write_bytes(data[:-7])

    journal2, records = _open(tmp_path)
    assert [r["job_id"] for r in records] == ["a"]
    # open() truncated the torn tail; the file is valid again.
    _, _, dropped = replay_file(journal2.path)
    assert dropped == 0
    # And appending after the truncation yields a fully valid file.
    journal2.append("submit", job_id="c")
    journal2.close()
    replayed, _, dropped = replay_file(journal2.path)
    assert [r.get("job_id") for r in replayed] == ["a", "c"]
    assert dropped == 0


def test_corrupted_middle_record_stops_replay(tmp_path):
    journal, _ = _open(tmp_path)
    journal.append("submit", job_id="a")
    journal.append("submit", job_id="b")
    journal.close()
    lines = journal.path.read_bytes().splitlines(keepends=True)
    lines[0] = lines[0].replace(b'"a"', b'"X"')  # checksum now wrong
    journal.path.write_bytes(b"".join(lines))
    records, valid, dropped = replay_file(journal.path)
    assert records == [] and valid == 0 and dropped > 0


def test_verify_line_rejects_garbage():
    assert verify_line(b"") is None
    assert verify_line(b"nospace") is None
    assert verify_line(b"deadbeefdeadbeef {}") is None  # checksum mismatch
    assert verify_line(b"short {}") is None


def test_append_requires_open(tmp_path):
    journal = Journal(tmp_path / "j.wal")
    with pytest.raises(JournalError):
        journal.append("submit", job_id="a")


def test_compaction_preserves_replay_and_seq(tmp_path):
    journal, _ = _open(tmp_path)
    for i in range(5):
        journal.append("submit", job_id=f"job{i}")
    journal.compact(
        [{"type": "submit", "seq": 0, "job_id": "job4"}]
    )
    record = journal.append("claim", job_id="job4")
    assert record["seq"] == 5  # numbering continued, not reset
    journal.close()
    replayed, _, dropped = replay_file(journal.path)
    assert dropped == 0
    assert [r["type"] for r in replayed] == ["submit", "claim"]


def test_oversized_record_is_refused(tmp_path):
    journal, _ = _open(tmp_path)
    with pytest.raises(JournalError):
        journal.append("submit", blob="x" * (33 * 1024 * 1024))
    # The refused record must not have hit the file.
    journal.close()
    replayed, _, _ = replay_file(journal.path)
    assert replayed == []


# ----------------------------------------------------------------------
# property: truncation at any byte offset replays consistently
# ----------------------------------------------------------------------
def _queue_state(records: list[dict]) -> dict[str, str]:
    queue = JobQueue()
    queue.restore(records)
    return {job_id: job.state for job_id, job in queue.jobs.items()}


@st.composite
def _job_histories(draw):
    """A plausible journal history over a handful of jobs."""
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    records: list[dict] = []
    for i in range(n_jobs):
        job_id = f"job{i}"
        records.append(
            {
                "type": "submit",
                "job_id": job_id,
                "job_seq": i,
                "key": f"key{i}",
                "kind": "probe",
                "spec": {"kind": "probe", "nonce": job_id},
                "priority": draw(st.integers(min_value=0, max_value=2)),
                "submitted_s": 0.0,
            }
        )
        fate = draw(
            st.sampled_from(
                ["pending", "claimed", "requeued", "done", "failed"]
            )
        )
        if fate == "pending":
            continue
        records.append(
            {"type": "claim", "job_id": job_id, "worker": "w0", "attempt": 1}
        )
        if fate == "requeued":
            records.append(
                {"type": "requeue", "job_id": job_id, "attempts": 1,
                 "reason": "test"}
            )
        elif fate == "done":
            records.append(
                {"type": "complete", "job_id": job_id,
                 "result": {"echo": i}}
            )
        elif fate == "failed":
            records.append(
                {"type": "fail", "job_id": job_id,
                 "error": {"error_type": "FaultInjected", "message": "x"}}
            )
    return records


@given(history=_job_histories(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_truncated_journal_replays_to_consistent_queue(
    tmp_path_factory, history, data
):
    tmp_path = tmp_path_factory.mktemp("wal")
    journal = Journal(tmp_path / "j.wal")
    journal.open()
    for record in history:
        fields = dict(record)
        journal.append(fields.pop("type"), **fields)
    journal.close()
    blob = journal.path.read_bytes()

    cut = data.draw(
        st.integers(min_value=0, max_value=len(blob)), label="cut"
    )
    journal.path.write_bytes(blob[:cut])

    # Replay must never raise, and must equal the reduction over the
    # longest valid line prefix of the truncated bytes.
    truncated = Journal(tmp_path / "j.wal")
    records = truncated.open()
    truncated.close()

    prefix: list[dict] = []
    offset = 0
    while offset < cut:
        end = blob.find(b"\n", offset)
        if end < 0 or end >= cut:
            break
        line = verify_line(blob[offset:end])
        assert line is not None  # every full line we wrote is valid
        prefix.append(line)
        offset = end + 1
    assert records == prefix

    state = _queue_state(records)
    full_state = _queue_state(
        [json.loads(line.split(b" ", 1)[1]) for line in blob.splitlines()]
    )
    for job_id, job_state in state.items():
        # No job materializes out of nothing...
        assert job_id in full_state
        # ...no acknowledged completion is lost for replayed jobs, and
        # nothing is ever left "running" after recovery.
        assert job_state in (PENDING, DONE, FAILED)
        assert job_state != RUNNING
    # Jobs whose terminal record survived the cut keep their terminal
    # state exactly (completed work is never reopened or duplicated).
    terminal_in_prefix = {
        r["job_id"]: (DONE if r["type"] == "complete" else FAILED)
        for r in prefix
        if r["type"] in ("complete", "fail")
    }
    for job_id, expected in terminal_in_prefix.items():
        assert state[job_id] == expected
