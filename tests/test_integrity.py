"""Unit tests for repro.integrity: invariants, contract modes, stats."""

import math

import pytest

from repro.errors import IntegrityError
from repro.flow import run_flow_2d
from repro.integrity import (
    CHECKS,
    CheckMode,
    check_connectivity,
    check_design,
    check_placement,
    check_result,
    check_tiers,
    check_timing,
    current_mode,
    enforce,
    get_integrity_stats,
    parse_mode,
    reset_integrity_stats,
)
from repro.liberty.presets import make_twelve_track_library


@pytest.fixture(scope="module")
def finished():
    design, result = run_flow_2d(
        "aes", make_twelve_track_library(), period_ns=1.0, scale=0.12, seed=4
    )
    return design, result


class TestModes:
    def test_parse_all_modes(self):
        for mode in CheckMode:
            assert parse_mode(mode.value) is mode
        assert parse_mode(" STRICT ") is CheckMode.STRICT

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown check mode"):
            parse_mode("paranoid")

    def test_current_mode_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "warn")
        assert current_mode() is CheckMode.WARN
        assert current_mode("strict") is CheckMode.STRICT
        assert current_mode(CheckMode.REPAIR) is CheckMode.REPAIR
        monkeypatch.delenv("REPRO_CHECK")
        assert current_mode() is CheckMode.OFF


class TestInvariants:
    def test_healthy_design_is_clean(self, finished):
        design, _ = finished
        assert check_design(design) == []

    def test_unknown_check_name_rejected(self, finished):
        design, _ = finished
        with pytest.raises(ValueError, match="unknown"):
            check_design(design, checks=["connectivity", "bogus"])

    def test_dangling_net_flagged(self, finished):
        design, _ = finished
        net = design.netlist.add_net("__dangling__")
        try:
            found = check_connectivity(design)
            assert any(v.code == "dangling-net" and v.repairable
                       for v in found)
        finally:
            design.netlist.remove_net("__dangling__")

    def test_overlap_flagged(self, finished):
        design, _ = finished
        movable = sorted(
            (i for i in design.netlist.instances.values()
             if not i.cell.is_macro and not i.fixed and i.is_placed
             and i.tier == 0),
            key=lambda i: i.name,
        )
        a, b = movable[0], movable[1]
        old = (b.x_um, b.y_um)
        b.x_um, b.y_um = a.x_um, a.y_um
        try:
            found = check_placement(design)
            assert any(v.code == "overlap" for v in found)
        finally:
            b.x_um, b.y_um = old

    def test_bad_tier_flagged(self, finished):
        design, _ = finished
        inst = next(
            i for i in design.netlist.instances.values()
            if not i.cell.is_macro
        )
        inst.tier, old = 9, inst.tier
        try:
            found = check_tiers(design)
            assert any(v.code == "bad-tier" for v in found)
        finally:
            inst.tier = old

    def test_comb_loop_flagged(self, finished):
        design, _ = finished
        from repro.liberty.cells import CellFunction

        inst = next(
            i for i in sorted(design.netlist.instances.values(),
                              key=lambda i: i.name)
            if not i.cell.is_macro and not i.cell.is_sequential
            and i.net_of("Y") is not None and i.net_of("A") is not None
            and i.net_of("A") != i.net_of("Y")
        )
        old_net = inst.net_of("A")
        design.netlist.disconnect(inst.name, "A")
        design.netlist.connect(inst.net_of("Y"), inst.name, "A")
        try:
            found = check_timing(design)
            assert any(v.code == "comb-loop" for v in found)
        finally:
            design.netlist.disconnect(inst.name, "A")
            design.netlist.connect(old_net, inst.name, "A")

    def test_check_result_clean_and_poisoned(self, finished):
        _, result = finished
        assert check_result(result) == []
        poisoned = dict(result.to_dict())
        poisoned["wns_ns"] = math.nan
        poisoned["si_area_mm2"] = -1.0
        found = check_result(poisoned)
        assert any(v.code == "non-finite" for v in found)
        assert any(v.subject == "si_area_mm2" for v in found)


class TestEnforce:
    def test_off_mode_skips_everything(self, finished):
        design, _ = finished
        net = design.netlist.add_net("__dangling__")
        try:
            out = enforce(design, stage="t", checks=("connectivity",),
                          mode=CheckMode.OFF)
            assert out == []
        finally:
            design.netlist.remove_net("__dangling__")

    def test_warn_returns_violations(self, finished):
        design, _ = finished
        net = design.netlist.add_net("__dangling__")
        try:
            out = enforce(design, stage="t", checks=("connectivity",),
                          mode=CheckMode.WARN)
            assert any(v.code == "dangling-net" for v in out)
        finally:
            design.netlist.remove_net("__dangling__")

    def test_strict_raises_with_context(self, finished):
        design, _ = finished
        design.netlist.add_net("__dangling__")
        try:
            with pytest.raises(IntegrityError) as excinfo:
                enforce(design, stage="t", checks=("connectivity",),
                        mode=CheckMode.STRICT)
            err = excinfo.value
            assert err.context["stage"] == "t"
            assert err.violations
        finally:
            design.netlist.remove_net("__dangling__")

    def test_repair_strips_dangling_net(self, finished):
        design, _ = finished
        design.netlist.add_net("__dangling__")
        out = enforce(design, stage="t", checks=("connectivity",),
                      mode=CheckMode.REPAIR)
        # enforce returns the pre-repair violations; the repair hook
        # must have stripped the net so the re-check passed (no raise).
        assert any(v.code == "dangling-net" for v in out)
        assert "__dangling__" not in design.netlist.nets

    def test_stats_accumulate(self, finished):
        design, _ = finished
        reset_integrity_stats()
        enforce(design, stage="t", checks=("connectivity",),
                mode=CheckMode.WARN)
        stats = get_integrity_stats()
        assert stats.boundaries_checked == 1
        reset_integrity_stats()

    def test_checks_registry_names(self):
        assert set(CHECKS) == {
            "connectivity", "placement", "tiers", "tier_balance", "timing"
        }
