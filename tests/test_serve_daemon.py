"""ServerCore + Supervisor, in process: journal-first ordering, probes.

These tests drive the daemon's core without the socket layer: submits,
dedup, backpressure, the journal-before-memory invariant under injected
journal faults, and a real (spawned) worker pool executing probe jobs
with crash/requeue/poison handling.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ServeError
from repro.experiments import faults
from repro.serve.daemon import ServeConfig, ServerCore
from repro.serve.journal import JournalError, replay_file
from repro.serve.queue import DONE, FAILED, PENDING
from repro.serve.supervisor import Supervisor


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
    faults.reset_fault_state()
    yield
    faults.reset_fault_state()


def _core(tmp_path, **overrides) -> ServerCore:
    overrides.setdefault("state_dir", tmp_path / "serve")
    return ServerCore(ServeConfig.from_env(**overrides))


def _probe(nonce, **extra):
    return {"kind": "probe", "nonce": nonce, **extra}


class TestCoreOps:
    def test_submit_status_result_lifecycle(self, tmp_path):
        core = _core(tmp_path)
        response = core.submit(_probe("a"))
        assert response["ok"] and not response["deduped"]
        job_id = response["job_id"]
        assert core.status(job_id)["state"] == PENDING
        assert core.status(job_id)["pending_ahead"] == 0

        job = core.claim_job("w0")
        assert job.job_id == job_id
        core.finish_job(job_id, {"echo": "a"})
        view = core.result(job_id)
        assert view["state"] == DONE and view["result"] == {"echo": "a"}
        core.close()

    def test_dedup_returns_same_job(self, tmp_path):
        core = _core(tmp_path)
        first = core.submit(_probe("same"))
        second = core.submit(_probe("same"))
        assert second["deduped"] and second["job_id"] == first["job_id"]
        assert core.stats.deduped == 1
        core.close()

    def test_backpressure_busy_with_retry_after(self, tmp_path):
        core = _core(tmp_path, queue_max=1, retry_after_s=7.5)
        assert core.submit(_probe("a"))["ok"]
        rejected = core.submit(_probe("b"))
        assert not rejected["ok"]
        assert rejected["code"] == "busy"
        assert rejected["retry_after"] == 7.5
        assert core.stats.busy_rejected == 1
        # Dedup onto the existing job is still admitted while full.
        assert core.submit(_probe("a"))["deduped"]
        core.close()

    def test_draining_rejects_new_submits(self, tmp_path):
        core = _core(tmp_path)
        before = core.submit(_probe("a"))
        core.start_drain()
        rejected = core.submit(_probe("b"))
        assert rejected["code"] == "draining"
        # Existing jobs stay visible (status/result keep working).
        assert core.status(before["job_id"])["ok"]
        # Dedup of an already-accepted job is not new work: admitted.
        assert core.submit(_probe("a"))["deduped"]
        core.close()

    def test_unknown_job_and_bad_spec(self, tmp_path):
        core = _core(tmp_path)
        assert core.status("nope")["code"] == "unknown_job"
        assert core.result("nope")["code"] == "unknown_job"
        with pytest.raises(ServeError):
            core.submit({"kind": "not-a-kind"})
        core.close()


class TestJournalFirstOrdering:
    def test_failed_journal_write_rejects_submit(self, tmp_path, monkeypatch):
        core = _core(tmp_path)
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=journal_write,kind=raise_transient"
        )
        faults.reset_fault_state()
        with pytest.raises(JournalError):
            core.submit(_probe("lost"))
        # The queue must not know a job the journal never recorded.
        assert core.queue.jobs == {}
        assert core.stats.submitted == 0
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_fault_state()
        # And the daemon keeps serving once the disk recovers.
        assert core.submit(_probe("kept"))["ok"]
        core.close()

    def test_failed_claim_journal_keeps_job_pending(
        self, tmp_path, monkeypatch
    ):
        core = _core(tmp_path)
        core.submit(_probe("a"))
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=job_claim,kind=raise_transient"
        )
        faults.reset_fault_state()
        with pytest.raises((JournalError, OSError)):
            core.claim_job("w0")
        job = next(iter(core.queue.jobs.values()))
        assert job.state == PENDING and job.attempts == 0
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_fault_state()
        assert core.claim_job("w0").job_id == job.job_id
        core.close()

    def test_restart_recovers_claimed_job(self, tmp_path):
        core = _core(tmp_path)
        done = core.submit(_probe("done"))["job_id"]
        core.finish_job(core.claim_job("w0").job_id, {"echo": 1})
        inflight = core.submit(_probe("inflight"))["job_id"]
        core.claim_job("w0")
        core.close()  # no clean completion for `inflight`: daemon "dies"

        core2 = _core(tmp_path)
        assert core2.stats.recovered == 1
        assert core2.result(done)["state"] == DONE
        assert core2.status(inflight)["state"] == PENDING
        # The recovered claim counts toward the restart budget.
        assert core2.queue.jobs[inflight].attempts == 1
        core2.close()

    def test_startup_compaction_bounds_journal(self, tmp_path):
        core = _core(tmp_path)
        for i in range(20):
            job_id = core.submit(_probe(f"n{i}"))["job_id"]
            core.finish_job(core.claim_job("w0").job_id, {"echo": i})
        size_before = core.config.journal_path.stat().st_size
        core.close()
        core2 = _core(tmp_path)
        # 60 records (submit+claim+complete each) compact to 40
        # (submit+complete), and every result survives.
        assert core2.config.journal_path.stat().st_size < size_before
        records, _, dropped = replay_file(core2.config.journal_path)
        assert dropped == 0
        assert sum(r["type"] == "complete" for r in records) == 20
        assert len(core2.queue.jobs) == 20
        assert all(j.state == DONE for j in core2.queue.jobs.values())
        core2.close()


class TestSupervisedExecution:
    def _run(self, core, supervisor, job_ids, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                core.queue.jobs[j].state in (DONE, FAILED) for j in job_ids
            ):
                return
            time.sleep(0.05)
        states = {j: core.queue.jobs[j].state for j in job_ids}
        raise AssertionError(f"jobs did not settle: {states}")

    def test_probe_jobs_complete_and_failures_classify(self, tmp_path):
        core = _core(tmp_path, workers=2)
        supervisor = Supervisor(
            core, workers=2, heartbeat_s=0.2, job_timeout_s=30.0,
            restart_budget=1,
        )
        ok = core.submit(_probe("ok", payload={"v": 1}))["job_id"]
        bad = core.submit(_probe("bad", fail="deterministic"))["job_id"]
        supervisor.start()
        try:
            self._run(core, supervisor, [ok, bad])
        finally:
            supervisor.stop()
        assert core.result(ok)["result"]["echo"] == {"v": 1}
        view = core.result(bad)
        assert view["state"] == FAILED
        assert view["error"]["error_type"] == "FaultInjected"
        assert view["error"]["kind"] == "deterministic"
        core.close()

    def test_transient_failure_retries_then_poisons(self, tmp_path):
        core = _core(tmp_path, workers=1)
        supervisor = Supervisor(
            core, workers=1, heartbeat_s=0.2, job_timeout_s=30.0,
            restart_budget=2,
        )
        # Fails transiently on every attempt: retried up to the budget,
        # then failed as a structured poison job.
        job_id = core.submit(_probe("flaky", fail="transient"))["job_id"]
        supervisor.start()
        try:
            self._run(core, supervisor, [job_id])
        finally:
            supervisor.stop()
        view = core.result(job_id)
        assert view["state"] == FAILED
        assert view["error"]["error_type"] == "CrashLoop"
        assert view["attempts"] == 3  # budget 2 -> 3 attempts total
        assert core.stats.requeued == 2
        core.close()

    def test_worker_crash_respawns_and_requeues(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=worker,kind=exit,times=1"
        )
        monkeypatch.setenv(
            "REPRO_FAULTS_STATE", str(tmp_path / "fault-state")
        )
        faults.reset_fault_state()
        core = _core(tmp_path, workers=1)
        supervisor = Supervisor(
            core, workers=1, heartbeat_s=0.2, job_timeout_s=30.0,
            restart_budget=3,
        )
        job_id = core.submit(_probe("crashy"))["job_id"]
        supervisor.start()
        try:
            self._run(core, supervisor, [job_id])
        finally:
            supervisor.stop()
        # First attempt died with the worker; the respawned worker
        # reran it to completion.
        view = core.result(job_id)
        assert view["state"] == DONE
        assert view["attempts"] == 2
        assert core.stats.worker_respawns >= 1
        core.close()
