"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow", "aes"])
        assert args.design == "aes"
        assert args.config == "3D_HET"
        assert args.scale == 0.4

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "fft"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "aes", "--config", "4D"])

    def test_matrix_stats_and_jobs_flags(self):
        args = build_parser().parse_args(
            ["matrix", "aes", "--stats", "--jobs", "4"]
        )
        assert args.stats is True
        assert args.jobs == 4
        args = build_parser().parse_args(["matrix", "aes"])
        assert args.stats is False
        assert args.jobs is None

    def test_cache_flags(self):
        assert build_parser().parse_args(["cache"]).clear is False
        assert build_parser().parse_args(["cache", "--clear"]).clear is True

    def test_trace_flag_on_run_commands(self):
        for base in (["flow", "aes"], ["matrix", "aes"],
                     ["sweep", "aes"], ["report"]):
            assert build_parser().parse_args(base).trace is None
            args = build_parser().parse_args(base + ["--trace", "t.json"])
            assert args.trace == "t.json"

    def test_trace_and_profile_subcommands(self):
        args = build_parser().parse_args(["trace", "t.json"])
        assert args.file == "t.json"
        assert args.depth is None
        assert args.validate is False
        args = build_parser().parse_args(
            ["trace", "t.json", "--depth", "2", "--no-metrics", "--validate"]
        )
        assert args.depth == 2
        assert args.no_metrics is True
        assert args.validate is True
        assert build_parser().parse_args(["profile", "t.json"]).top == 5
        assert build_parser().parse_args(
            ["profile", "t.json", "--top", "3"]
        ).top == 3

    def test_resilience_flags(self):
        for base in (["matrix", "aes"], ["report"]):
            args = build_parser().parse_args(base)
            assert args.keep_going is False
            assert args.max_retries is None
            assert args.timeout is None
            assert args.resume is False
            args = build_parser().parse_args(base + [
                "--keep-going", "--max-retries", "5",
                "--timeout", "30", "--resume",
            ])
            assert args.keep_going is True
            assert args.max_retries == 5
            assert args.timeout == 30.0
            assert args.resume is True


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table IV" in out
        assert "0.9600" in out  # the 2-D wafer cost constant

    def test_flow(self, capsys):
        rc = main([
            "flow", "aes", "--config", "2D_12T", "--period", "0.7",
            "--scale", "0.2", "--seed", "7",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aes [2D_12T]" in out
        assert "total_power_mw" in out

    def test_export(self, tmp_path, capsys):
        rc = main([
            "export", "aes", "--config", "2D_12T", "--period", "0.7",
            "--scale", "0.2", "--seed", "7", "--output", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "aes.v").exists()
        assert (tmp_path / "aes.def").exists()
        assert (tmp_path / "28nm_12T.lib").exists()

    def test_cache_info_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "deadbeef.json").write_text("{\"payload\": {}}")
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries     1" in out
        assert main(["cache", "--clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.json"))

    def test_flow_trace_roundtrip(self, tmp_path, capsys, monkeypatch):
        """--trace writes a valid file that trace/profile can read back."""
        import json
        import os

        from repro.obs import trace
        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "t.json"
        try:
            rc = main([
                "flow", "aes", "--config", "2D_12T", "--period", "0.7",
                "--scale", "0.2", "--seed", "7", "--trace", str(path),
            ])
        finally:
            # main() exports REPRO_TRACE so pool workers would inherit
            # it; undo that side effect for the rest of the suite.
            os.environ.pop(trace.ENV_TRACE, None)
            trace.reset_trace()
            trace.disable_tracing()
        assert rc == 0
        captured = capsys.readouterr()
        assert "wrote trace" in captured.err
        assert validate_chrome_trace(json.loads(path.read_text())) == []

        assert main(["trace", str(path), "--validate"]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flow" in out and "synthesis" in out
        assert main(["profile", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "self%" in out

    def test_trace_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"ph": "X", "name": "x"}]}')
        assert main(["trace", str(path), "--validate"]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_matrix_stats(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main([
            "matrix", "aes", "--period", "0.9",
            "--scale", "0.2", "--seed", "7", "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3D_HET" in out
        assert "-- telemetry --" in out
        assert "flows run" in out


class TestDegradedRuns:
    """Failure semantics at the CLI boundary, driven by fault injection."""

    @pytest.fixture(autouse=True)
    def faulty_cell(self, monkeypatch, tmp_path):
        from repro.experiments import faults
        from repro.experiments.runner import clear_memory_caches
        from repro.experiments.telemetry import reset_telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_HET,kind=raise,times=0",
        )
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()
        yield
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()

    ARGS = ["matrix", "aes", "--period", "0.9", "--scale", "0.2",
            "--seed", "7"]

    def test_keep_going_prints_failure_table_and_exits_3(self, capsys):
        from repro.cli import EXIT_QUARANTINED

        rc = main(self.ARGS + ["--keep-going"])
        assert rc == EXIT_QUARANTINED
        out = capsys.readouterr().out
        assert "QUARANTINED" in out
        assert "-- failed cells --" in out
        assert "FaultInjected" in out
        # the healthy cells still printed their rows
        assert "2D_12T" in out and "WNS" in out

    def test_fail_fast_prints_error_and_exits_1(self, capsys):
        rc = main(self.ARGS)
        assert rc == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "design=aes" in captured.err
        assert "config=3D_HET" in captured.err
