"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow", "aes"])
        assert args.design == "aes"
        assert args.config == "3D_HET"
        assert args.scale == 0.4

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "fft"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "aes", "--config", "4D"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table IV" in out
        assert "0.9600" in out  # the 2-D wafer cost constant

    def test_flow(self, capsys):
        rc = main([
            "flow", "aes", "--config", "2D_12T", "--period", "0.7",
            "--scale", "0.2", "--seed", "7",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aes [2D_12T]" in out
        assert "total_power_mw" in out

    def test_export(self, tmp_path, capsys):
        rc = main([
            "export", "aes", "--config", "2D_12T", "--period", "0.7",
            "--scale", "0.2", "--seed", "7", "--output", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "aes.v").exists()
        assert (tmp_path / "aes.def").exists()
        assert (tmp_path / "28nm_12T.lib").exists()
