"""Property-based tests for Netlist mutation round-trips.

Hypothesis drives arbitrary (but precondition-respecting) sequences of
``connect`` / ``disconnect`` / ``rebind`` / ``remove_instance`` /
``remove_net`` edits against a small netlist and asserts, after every
step, the two invariants every flow stage relies on:

- **one driver**: a net never acquires a second driver, and an output
  pin never lands in a sink list;
- **pin/net bidirectionality**: every bound pin appears exactly once on
  its net's side (driver or sinks), and every net connection points back
  at a pin bound to that net.

This is deliberately weaker than ``Netlist.validate()``: arbitrary edit
sequences legitimately leave floating inputs and undriven nets behind,
so only the structural cross-reference invariants are asserted here.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import NetlistError
from repro.liberty.presets import make_twelve_track_library
from repro.netlist.core import Netlist

LIB = make_twelve_track_library()

#: Cells grouped by their pin signature so rebind always stays legal.
_BY_PINS: dict[tuple[str, ...], list] = {}
for _cell in LIB.cells:
    if _cell.is_macro:
        continue
    _BY_PINS.setdefault(tuple(sorted(_cell.pins)), []).append(_cell)
CELLS = [c for group in _BY_PINS.values() for c in group]


def assert_consistent(netlist: Netlist) -> None:
    """One-driver + bidirectionality, tolerant of floating/undriven."""
    # pin -> net direction
    for inst in netlist.instances.values():
        for pin, net_name in inst.connected_pins():
            assert net_name in netlist.nets, (
                f"{inst.name}.{pin} points at missing net {net_name}"
            )
            net = netlist.nets[net_name]
            ref = (inst.name, pin)
            if inst.cell.pins[pin].direction == "output":
                assert net.driver == ref, f"driver mismatch on {net_name}"
                assert ref not in net.sinks, (
                    f"output pin {ref} appears as a sink of {net_name}"
                )
            else:
                assert net.sinks.count(ref) == 1, (
                    f"sink {ref} appears {net.sinks.count(ref)}x on "
                    f"{net_name}"
                )
    # net -> pin direction
    for net in netlist.nets.values():
        if net.driver is not None:
            iname, pin = net.driver
            assert iname in netlist.instances, f"stale driver on {net.name}"
            inst = netlist.instances[iname]
            assert inst.cell.pins[pin].direction == "output"
            assert inst.net_of(pin) == net.name
        for iname, pin in net.sinks:
            assert iname in netlist.instances, f"stale sink on {net.name}"
            inst = netlist.instances[iname]
            assert inst.cell.pins[pin].direction != "output"
            assert inst.net_of(pin) == net.name


def _fresh_netlist(n_insts: int, n_nets: int) -> Netlist:
    netlist = Netlist("prop")
    for i in range(n_insts):
        netlist.add_instance(f"u{i}", CELLS[i % len(CELLS)])
    for i in range(n_nets):
        netlist.add_net(f"n{i}")
    return netlist


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_mutation_sequences_preserve_invariants(data):
    netlist = _fresh_netlist(
        data.draw(st.integers(3, 8), label="instances"),
        data.draw(st.integers(2, 6), label="nets"),
    )
    n_ops = data.draw(st.integers(1, 40), label="ops")
    for _ in range(n_ops):
        op = data.draw(
            st.sampled_from(
                ["connect", "disconnect", "rebind", "remove_instance",
                 "remove_net", "add_instance", "add_net"]
            ),
            label="op",
        )
        if op == "connect":
            unbound = [
                (inst.name, pin)
                for inst in netlist.instances.values()
                for pin in inst.cell.pins
                if inst.net_of(pin) is None
            ]
            if not unbound or not netlist.nets:
                continue
            iname, pin = data.draw(st.sampled_from(sorted(unbound)))
            net_name = data.draw(st.sampled_from(sorted(netlist.nets)))
            inst = netlist.instances[iname]
            is_output = inst.cell.pins[pin].direction == "output"
            if is_output and netlist.nets[net_name].driver is not None:
                # The one-driver invariant: the second driver must be
                # refused and the netlist left untouched.
                with pytest.raises(NetlistError):
                    netlist.connect(net_name, iname, pin)
                assert inst.net_of(pin) is None
            else:
                netlist.connect(net_name, iname, pin)
                assert inst.net_of(pin) == net_name
        elif op == "disconnect":
            bound = [
                (inst.name, pin)
                for inst in netlist.instances.values()
                for pin, _net in inst.connected_pins()
            ]
            if not bound:
                continue
            iname, pin = data.draw(st.sampled_from(sorted(bound)))
            netlist.disconnect(iname, pin)
            assert netlist.instances[iname].net_of(pin) is None
        elif op == "rebind":
            if not netlist.instances:
                continue
            iname = data.draw(st.sampled_from(sorted(netlist.instances)))
            inst = netlist.instances[iname]
            group = _BY_PINS[tuple(sorted(inst.cell.pins))]
            netlist.rebind(iname, data.draw(st.sampled_from(group)))
        elif op == "remove_instance":
            if not netlist.instances:
                continue
            iname = data.draw(st.sampled_from(sorted(netlist.instances)))
            netlist.remove_instance(iname)
            assert iname not in netlist.instances
        elif op == "remove_net":
            if not netlist.nets:
                continue
            net_name = data.draw(st.sampled_from(sorted(netlist.nets)))
            net = netlist.nets[net_name]
            if net.driver is not None or net.sinks:
                with pytest.raises(NetlistError):
                    netlist.remove_net(net_name)
                assert net_name in netlist.nets
            else:
                netlist.remove_net(net_name)
                assert net_name not in netlist.nets
        elif op == "add_instance":
            cell = data.draw(st.sampled_from(CELLS))
            netlist.add_instance(netlist.unique_name("u"), cell)
        elif op == "add_net":
            netlist.add_net(netlist.unique_name("n"))
        assert_consistent(netlist)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_connect_disconnect_roundtrip_is_identity(seed):
    """connect -> disconnect restores the exact pre-edit structure."""
    import random

    rng = random.Random(seed)
    netlist = _fresh_netlist(5, 4)
    # Bind a few pins first so the snapshot is non-trivial.
    for inst in netlist.instances.values():
        for pin in inst.cell.pins:
            if rng.random() < 0.5:
                continue
            net_name = rng.choice(sorted(netlist.nets))
            is_output = inst.cell.pins[pin].direction == "output"
            if is_output and netlist.nets[net_name].driver is not None:
                continue
            netlist.connect(net_name, inst.name, pin)

    def snapshot(nl: Netlist):
        return (
            {i.name: dict(i._pin_nets) for i in nl.instances.values()},
            {n.name: (n.driver, list(n.sinks)) for n in nl.nets.values()},
        )

    before = snapshot(netlist)
    unbound = [
        (inst.name, pin)
        for inst in netlist.instances.values()
        for pin in inst.cell.pins
        if inst.net_of(pin) is None
    ]
    for iname, pin in unbound:
        inst = netlist.instances[iname]
        is_output = inst.cell.pins[pin].direction == "output"
        candidates = [
            n for n in sorted(netlist.nets)
            if not (is_output and netlist.nets[n].driver is not None)
        ]
        if not candidates:
            continue
        net_name = rng.choice(candidates)
        netlist.connect(net_name, iname, pin)
        netlist.disconnect(iname, pin)
        assert snapshot(netlist) == before
        assert_consistent(netlist)
