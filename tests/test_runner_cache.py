"""Tests for the persistently-cached, parallel evaluation-matrix engine.

Covers the headline regression (period_ns missing from the result-cache
key), the on-disk cache (round trip, corrupt-entry recovery, kill
switch), telemetry accounting (a warm matrix performs zero flow runs),
the parallel fan-out (identical to serial), and the target-period search
(convergence, key isolation, upper-bound failure).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import cache
from repro.experiments.runner import (
    _SWEEP_BOUNDS,
    clear_memory_caches,
    find_target_period,
    run_configuration,
    run_matrix,
)
from repro.experiments.telemetry import (
    Telemetry,
    get_telemetry,
    reset_telemetry,
    timed_stage,
)
from repro.flow.report import FlowResult
from repro.power.analysis import PowerReport


def fake_result(design="aes", config="2D_12T", *, period_ns=1.0, wns_ns=0.0):
    return FlowResult(
        design=design, config=config, frequency_ghz=1.0 / period_ns,
        period_ns=period_ns, wns_ns=wns_ns, tns_ns=0.0, effective_delay_ns=1.0,
        si_area_mm2=1.0, footprint_mm2=1.0, chip_width_um=10.0, density=0.8,
        wirelength_mm=1.0, miv_count=0, cut_nets=0, total_power_mw=1.0,
        power=PowerReport(1.0, 0.0, 0.0, 0.0), pdp_pj=1.0, die_cost_1e6=1.0,
        cost_per_cm2=1.0, ppc=1.0, clock=None, critical_path=None,
        memory_nets=None, peak_congestion=0.5,
    )


class FakeConfig:
    """Stands in for a Configuration; scripted WNS per probed period."""

    def __init__(self, wns_of):
        self.calls: list[float] = []
        self._wns_of = wns_of

    def run(self, design_name, *, period_ns, **kwargs):
        self.calls.append(period_ns)
        return None, fake_result(
            design_name, period_ns=period_ns, wns_ns=self._wns_of(period_ns)
        )


@pytest.fixture
def fresh_engine(monkeypatch, tmp_path):
    """Cold memory caches + a private cache dir + zeroed telemetry."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_caches()
    reset_telemetry()
    yield
    clear_memory_caches()
    reset_telemetry()


class TestResultCacheKey:
    """The headline bugfix: period_ns is part of the result-cache key."""

    def test_explicit_period_does_not_poison_other_periods(self, fresh_engine):
        _d1, r1 = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=11
        )
        _d2, r2 = run_configuration(
            "aes", "2D_12T", period_ns=1.2, scale=0.2, seed=11
        )
        # Before the fix the second call returned the 0.9 ns result.
        assert r1.period_ns == pytest.approx(0.9)
        assert r2.period_ns == pytest.approx(1.2)
        assert get_telemetry().flows_run == 2

    def test_same_period_still_hits_in_process(self, fresh_engine):
        _d1, r1 = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=11
        )
        _d2, r2 = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=11
        )
        assert r1 is r2
        assert get_telemetry().flows_run == 1
        assert get_telemetry().memory_hits == 1

    def test_kwargs_bypass_caching(self, fresh_engine):
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=11)
        reset_telemetry()
        run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=11, opt_iterations=2
        )
        assert get_telemetry().flows_run == 1  # ran again despite warm caches


class TestDiskCache:
    def test_round_trip_and_zero_flow_warm_start(self, fresh_engine):
        _d, cold = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=12
        )
        clear_memory_caches()  # simulate a new process; disk survives
        reset_telemetry()
        design, warm = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=12
        )
        telemetry = get_telemetry()
        assert telemetry.flows_run == 0
        assert telemetry.disk_hits == 1
        assert design is None  # disk entries carry no Design object
        assert warm.row() == cold.row()
        assert warm.power == cold.power

    def test_need_design_forces_flow_after_disk_hit(self, fresh_engine):
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=12)
        clear_memory_caches()
        reset_telemetry()
        design, _r = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=12, need_design=True
        )
        assert design is not None
        assert get_telemetry().flows_run == 1

    def test_corrupt_entry_recovers_as_miss(self, fresh_engine):
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=13)
        entries = list(cache.cache_dir().glob("*.json"))
        assert entries
        for path in entries:
            path.write_text("{ truncated garbage")
        clear_memory_caches()
        reset_telemetry()
        _d, result = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=13
        )
        assert result.period_ns == pytest.approx(0.9)
        assert get_telemetry().flows_run == 1  # re-ran, did not crash
        for path in entries:
            assert not path.exists() or json.loads(path.read_text())

    def test_kill_switch_disables_reads_and_writes(self, fresh_engine, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache.cache_enabled()
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=14)
        assert not list(cache.cache_dir().glob("*.json"))
        clear_memory_caches()
        reset_telemetry()
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=14)
        telemetry = get_telemetry()
        assert telemetry.flows_run == 1
        assert telemetry.disk_hits == 0 and telemetry.disk_misses == 0

    def test_key_varies_with_every_field(self):
        base = dict(scale=0.5, seed=1, period_ns=1.0)
        key = cache.result_key("aes", "3D_HET", **base)
        assert key == cache.result_key("aes", "3D_HET", **base)
        assert key != cache.result_key("cpu", "3D_HET", **base)
        assert key != cache.result_key("aes", "2D_9T", **base)
        assert key != cache.result_key(
            "aes", "3D_HET", scale=0.4, seed=1, period_ns=1.0
        )
        assert key != cache.result_key(
            "aes", "3D_HET", scale=0.5, seed=2, period_ns=1.0
        )
        assert key != cache.result_key(
            "aes", "3D_HET", scale=0.5, seed=1, period_ns=1.1
        )


class TestFlowResultSerialization:
    def test_full_round_trip_from_real_flow(self, fresh_engine):
        _d, result = run_configuration(
            "cpu", "3D_HET", period_ns=1.1, scale=0.4, seed=23
        )
        back = FlowResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.row() == result.row()
        assert back.power == result.power
        assert back.clock == result.clock
        assert back.critical_path == result.critical_path
        assert back.memory_nets == result.memory_nets

    def test_minimal_round_trip(self):
        result = fake_result()
        back = FlowResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back == result


class TestWarmMatrix:
    def test_second_run_matrix_performs_zero_flows(self, fresh_engine):
        designs, configs = ("aes",), ("2D_12T", "3D_9T")
        cold = run_matrix(
            designs=designs, config_names=configs, scale=0.2, seed=16
        )
        assert get_telemetry().flows_run > 0
        clear_memory_caches()  # next-process simulation
        reset_telemetry()
        warm = run_matrix(
            designs=designs, config_names=configs, scale=0.2, seed=16
        )
        telemetry = get_telemetry()
        assert telemetry.flows_run == 0
        assert telemetry.disk_hits >= 3  # 1 period + 2 results
        assert warm.target_periods == cold.target_periods
        for key, result in cold.results.items():
            assert warm.results[key].row() == result.row()

    def test_lazy_design_rebuild_on_warm_matrix(self, fresh_engine):
        designs, configs = ("aes",), ("2D_12T",)
        run_matrix(designs=designs, config_names=configs, scale=0.2, seed=16)
        clear_memory_caches()
        reset_telemetry()
        warm = run_matrix(
            designs=designs, config_names=configs, scale=0.2, seed=16
        )
        assert get_telemetry().flows_run == 0
        design = warm.designs[("aes", "2D_12T")]  # triggers one rebuild
        assert design is not None
        assert get_telemetry().flows_run == 1
        assert warm.designs[("aes", "2D_12T")] is design  # now memoized


class TestParallel:
    def test_parallel_cold_run_matches_serial(self, fresh_engine, monkeypatch):
        designs, configs = ("aes",), ("2D_12T", "3D_9T")
        parallel = run_matrix(
            designs=designs, config_names=configs, scale=0.2, seed=17, jobs=2
        )
        assert get_telemetry().flows_run > 0  # workers reported their runs
        monkeypatch.setenv("REPRO_CACHE", "0")
        clear_memory_caches()
        serial = run_matrix(
            designs=designs, config_names=configs, scale=0.2, seed=17, jobs=1
        )
        assert parallel.target_periods == serial.target_periods
        assert set(parallel.results) == set(serial.results)
        for key, result in serial.results.items():
            assert parallel.results[key].row() == result.row()

    def test_pool_failure_falls_back_to_serial(self, fresh_engine, monkeypatch):
        import repro.experiments.parallel as par

        def broken(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(par, "ProcessPoolExecutor", broken)
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T",), scale=0.2, seed=18,
            jobs=4,
        )
        assert ("aes", "2D_12T") in matrix.results

    def test_default_jobs_env(self, monkeypatch):
        from repro.experiments.parallel import default_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1


class TestFindTargetPeriod:
    def _patch_flow(self, monkeypatch, wns_of):
        fake = FakeConfig(wns_of)
        monkeypatch.setattr(
            "repro.experiments.runner.configurations",
            lambda: {"2D_12T": fake},
        )
        return fake

    def test_binary_search_converges(self, fresh_engine, monkeypatch):
        # Timing met iff period >= 0.8 ns: the search must converge onto
        # 0.8 from above within the bisection resolution.
        fake = self._patch_flow(
            monkeypatch, lambda p: 0.0 if p >= 0.8 else -1.0
        )
        period = find_target_period("aes", scale=0.123, seed=0)
        assert 0.8 <= period <= 0.85
        assert len(fake.calls) >= 4
        assert get_telemetry().period_probes == len(fake.calls)

    def test_cache_isolation_across_scale_and_seed(self, fresh_engine, monkeypatch):
        fake = self._patch_flow(
            monkeypatch, lambda p: 0.0 if p >= 0.8 else -1.0
        )
        p1 = find_target_period("aes", scale=0.123, seed=0)
        probes_first = len(fake.calls)
        # same key: served from memory, no new probes
        assert find_target_period("aes", scale=0.123, seed=0) == p1
        assert len(fake.calls) == probes_first
        # different scale and different seed each trigger a fresh search
        find_target_period("aes", scale=0.124, seed=0)
        assert len(fake.calls) > probes_first
        probes_second = len(fake.calls)
        find_target_period("aes", scale=0.123, seed=1)
        assert len(fake.calls) > probes_second

    def test_upper_bound_failure_returns_hi(self, fresh_engine, monkeypatch):
        # Nothing meets timing anywhere in the bracket: the search returns
        # the upper sweep bound unchanged (documented behavior) instead of
        # raising, and the caller sees the failure through wns_ns.
        self._patch_flow(monkeypatch, lambda p: -10.0)
        period = find_target_period("aes", scale=0.125, seed=0)
        assert period == _SWEEP_BOUNDS["aes"][1]

    def test_persists_to_disk(self, fresh_engine, monkeypatch):
        fake = self._patch_flow(
            monkeypatch, lambda p: 0.0 if p >= 0.8 else -1.0
        )
        p1 = find_target_period("aes", scale=0.126, seed=0)
        clear_memory_caches()
        reset_telemetry()
        assert find_target_period("aes", scale=0.126, seed=0) == p1
        assert get_telemetry().disk_hits == 1
        assert len(fake.calls) >= 4  # only the first search probed


class TestTelemetry:
    def test_merge_and_snapshot_round_trip(self):
        a = Telemetry(flows_run=2, disk_hits=1)
        a.record_cell("aes", "2D_12T", 1.5, "flow")
        a.record_stage("flow", 1.5)
        b = Telemetry(flows_run=1, memory_hits=3)
        b.record_cell("cpu", "3D_HET", 2.5, "disk")
        b.record_stage("flow", 0.5)
        a.merge(b.snapshot())
        assert a.flows_run == 3
        assert a.memory_hits == 3
        assert a.cell_seconds[("cpu", "3D_HET")] == 2.5
        assert a.stage_seconds["flow"] == pytest.approx(2.0)
        again = Telemetry.from_snapshot(a.snapshot())
        assert again.cell_source == a.cell_source
        assert again.stage_seconds == a.stage_seconds

    def test_merge_warns_on_cell_collision(self, caplog):
        import logging

        a = Telemetry()
        a.record_cell("aes", "3D_9T", 1.0, "flow")
        b = Telemetry()
        b.record_cell("aes", "3D_9T", 2.0, "flow")
        b.record_cell("cpu", "3D_9T", 3.0, "disk")
        with caplog.at_level(logging.WARNING, logger="repro"):
            a.merge(b)
        warnings = [r for r in caplog.records if "telemetry merge" in r.message]
        assert len(warnings) == 1  # only the colliding cell, not cpu
        assert "aes/3D_9T" in warnings[0].getMessage()
        assert a.cell_seconds[("aes", "3D_9T")] == 2.0  # later report kept

    def test_merge_disjoint_cells_is_silent(self, caplog):
        import logging

        a = Telemetry()
        a.record_cell("aes", "2D_12T", 1.0, "flow")
        b = Telemetry()
        b.record_cell("aes", "3D_9T", 2.0, "flow")
        with caplog.at_level(logging.WARNING, logger="repro"):
            a.merge(b.snapshot())
        assert not [r for r in caplog.records if "telemetry merge" in r.message]

    def test_timed_stage_accumulates(self):
        reset_telemetry()
        with timed_stage("x"):
            pass
        with timed_stage("x"):
            pass
        assert get_telemetry().stage_seconds["x"] >= 0.0
        assert len(get_telemetry().stage_seconds) == 1

    def test_summary_mentions_key_counters(self):
        t = Telemetry(flows_run=4, disk_hits=2, disk_misses=1, memory_hits=7)
        t.record_cell("aes", "2D_12T", 1.25, "flow")
        text = t.summary()
        assert "flows run" in text and "4" in text
        assert "disk 2 hits / 1 misses" in text
        assert "aes" in text and "[flow]" in text
