"""Tests for the markdown report generator (repro.experiments.reportgen)."""

import pytest

from repro.experiments.reportgen import (
    _md_table,
    _section_boundary,
    _section_table1,
    _section_table4,
    render_report,
)
from repro.experiments.runner import EvaluationMatrix
from repro.experiments.tables import table2_output_boundary


class TestMarkdownHelpers:
    def test_md_table_structure(self):
        text = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_table1_section_has_ours_and_paper_rows(self):
        text = _section_table1()
        assert text.count("(ours)") == 6
        assert text.count("(paper)") == 6

    def test_boundary_section(self):
        text = _section_boundary("T", table2_output_boundary())
        assert "## T" in text
        assert "Case-I" in text and "Case-IV" in text

    def test_table4_section_constants(self):
        text = _section_table4()
        assert "0.9600" in text
        assert "1.9700" in text


class TestFullReport:
    @pytest.fixture(scope="class")
    def small_matrix(self):
        """A single-design matrix is enough to exercise every section."""
        from repro.experiments import runner
        from repro.experiments.runner import run_matrix

        matrix = run_matrix(designs=("cpu",), scale=0.25, seed=18)
        # clone the cpu results onto the other designs so the full-report
        # renderer (which iterates all four) has data everywhere
        for name in ("netcard", "aes", "ldpc"):
            matrix.target_periods[name] = matrix.target_periods["cpu"]
            for config in ("2D_9T", "2D_12T", "3D_9T", "3D_12T", "3D_HET"):
                matrix.results[(name, config)] = matrix.results[("cpu", config)]
                matrix.designs[(name, config)] = matrix.designs[("cpu", config)]
        return matrix

    def test_report_renders_all_sections(self, small_matrix):
        text = render_report(small_matrix)
        for heading in (
            "# Regenerated paper tables",
            "## Table I",
            "## Table II",
            "## Table III",
            "## Table IV",
            "## Table VI",
            "## Table VII",
            "## Table VIII",
            "## Figures",
            "## Section V claims",
        ):
            assert heading in text, heading

    def test_report_is_valid_markdown_tables(self, small_matrix):
        text = render_report(small_matrix)
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                # consistent cell separators
                assert line.endswith("|")
