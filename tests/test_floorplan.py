"""Tests for floorplanning (repro.place.floorplan)."""

import pytest

from repro.errors import PlacementError
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import MACRO_HALO, build_floorplan, port_positions


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def lib12(pair):
    return pair[0]


class TestDieSizing:
    def test_utilization_sets_core_area(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        std = nl.cell_area_um2(lambda i: not i.cell.is_macro)
        assert fp.density(nl) == pytest.approx(0.7, rel=0.01)
        assert fp.core_area_um2() == pytest.approx(std / 0.7, rel=0.01)

    def test_out_of_range_utilization_rejected(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        with pytest.raises(PlacementError):
            build_floorplan(nl, {0: lib12}, utilization=0.05)

    def test_lower_utilization_means_bigger_die(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        tight = build_floorplan(nl, {0: lib12}, utilization=0.9)
        loose = build_floorplan(nl, {0: lib12}, utilization=0.5)
        assert loose.area_um2 > tight.area_um2

    def test_pseudo_3d_halves_footprint(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        full = build_floorplan(nl, {0: lib12}, utilization=0.7)
        half = build_floorplan(
            nl, {0: lib12, 1: lib12}, utilization=0.7, demand_scale=0.5
        )
        assert half.area_um2 == pytest.approx(full.area_um2 / 2, rel=0.01)
        assert half.silicon_area_um2 == pytest.approx(full.area_um2, rel=0.01)

    def test_3d_sized_by_most_demanding_tier(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        # uneven partition: 30% of cells on tier 1
        insts = sorted(nl.instances)
        for name in insts[: int(0.3 * len(insts))]:
            nl.instances[name].tier = 1
        fp = build_floorplan(nl, {0: lib12, 1: lib12}, utilization=0.7)
        heavy = nl.cell_area_um2(lambda i: i.tier == 0 and not i.cell.is_macro)
        assert fp.core_area_um2(0) == pytest.approx(heavy / 0.7, rel=0.01)


class TestMacros:
    def test_macros_fixed_and_within_die(self, lib12):
        nl = generate_netlist("cpu", lib12, scale=0.5, seed=1)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        assert len(fp.macros) == len(nl.memory_macros())
        for slot in fp.macros:
            inst = nl.instances[slot.name]
            assert inst.fixed
            assert inst.is_placed
            assert slot.x_um + slot.width_um <= fp.width_um + 1e-6
            assert slot.y_um + slot.height_um <= fp.height_um + 1e-6

    def test_macros_do_not_overlap(self, lib12):
        nl = generate_netlist("cpu", lib12, scale=1.0, seed=1)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        slots = fp.macros
        for i, a in enumerate(slots):
            for b in slots[i + 1 :]:
                separated = (
                    a.x_um + a.width_um <= b.x_um + 1e-6
                    or b.x_um + b.width_um <= a.x_um + 1e-6
                    or a.y_um + a.height_um <= b.y_um + 1e-6
                    or b.y_um + b.height_um <= a.y_um + 1e-6
                )
                assert separated, (a.name, b.name)

    def test_blockage_counted_only_on_macro_tier(self, lib12):
        nl = generate_netlist("cpu", lib12, scale=0.5, seed=1)
        fp = build_floorplan(nl, {0: lib12, 1: lib12}, utilization=0.7,
                             demand_scale=0.5)
        assert fp.blockage_area_um2(0) > 0
        assert fp.blockage_area_um2(1) == 0
        assert fp.core_area_um2(1) > fp.core_area_um2(0)

    def test_macro_blockage_grows_die(self, lib12):
        with_mem = generate_netlist("cpu", lib12, scale=0.5, seed=1)
        fp = build_floorplan(with_mem, {0: lib12}, utilization=0.7)
        macro_area = sum(m.halo_area_um2 for m in fp.macros)
        std = with_mem.cell_area_um2(lambda i: not i.cell.is_macro)
        assert fp.area_um2 == pytest.approx(std / 0.7 + macro_area, rel=0.02)


class TestPortRing:
    def test_every_port_placed_on_boundary(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        pos = port_positions(nl, fp)
        assert set(pos) == set(nl.ports)
        for x, y in pos.values():
            on_x_edge = x in (0.0, fp.width_um)
            on_y_edge = y in (0.0, fp.height_um)
            assert on_x_edge or on_y_edge

    def test_port_ring_deterministic(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.3, seed=1)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        assert port_positions(nl, fp) == port_positions(nl, fp)
