"""Tests for NLDM lookup tables (repro.liberty.timing_model)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LibraryError
from repro.liberty.timing_model import TimingTable, linear_delay_table

SLEWS = (0.01, 0.05, 0.2)
LOADS = (1.0, 4.0, 16.0)


def make_table(values=None):
    if values is None:
        values = tuple(
            tuple(0.01 + 0.002 * s + 0.003 * l for l in range(3))
            for s in range(3)
        )
    return TimingTable(slew_axis=SLEWS, load_axis=LOADS, values=values)


class TestValidation:
    def test_rejects_short_axes(self):
        with pytest.raises(LibraryError):
            TimingTable(slew_axis=(0.1,), load_axis=LOADS, values=((1, 2, 3),))

    def test_rejects_non_monotone_slew_axis(self):
        with pytest.raises(LibraryError):
            TimingTable(
                slew_axis=(0.2, 0.1, 0.3),
                load_axis=LOADS,
                values=tuple((0.0,) * 3 for _ in range(3)),
            )

    def test_rejects_non_monotone_load_axis(self):
        with pytest.raises(LibraryError):
            TimingTable(
                slew_axis=SLEWS,
                load_axis=(4.0, 1.0, 16.0),
                values=tuple((0.0,) * 3 for _ in range(3)),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(LibraryError):
            TimingTable(slew_axis=SLEWS, load_axis=LOADS, values=((1.0, 2.0),))


class TestLookup:
    def test_exact_corner_values(self):
        table = make_table()
        for i, s in enumerate(SLEWS):
            for j, l in enumerate(LOADS):
                assert table.lookup(s, l) == pytest.approx(table.values[i][j])

    def test_midpoint_is_average(self):
        table = make_table()
        mid = table.lookup(
            (SLEWS[0] + SLEWS[1]) / 2, (LOADS[0] + LOADS[1]) / 2
        )
        corners = [table.values[i][j] for i in (0, 1) for j in (0, 1)]
        assert mid == pytest.approx(sum(corners) / 4)

    def test_extrapolates_beyond_max_load(self):
        table = linear_delay_table(0.01, 2.0, 0.1, SLEWS, LOADS)
        inside = table.lookup(0.05, LOADS[-1])
        outside = table.lookup(0.05, LOADS[-1] * 2)
        # linear model: extrapolation continues the same slope
        assert outside == pytest.approx(inside + 2.0 * LOADS[-1] * 1e-3)

    def test_covers_slew(self):
        table = make_table()
        assert table.covers_slew(0.05)
        assert not table.covers_slew(0.5)
        assert table.slew_range == (SLEWS[0], SLEWS[-1])
        assert table.load_range == (LOADS[0], LOADS[-1])


class TestLinearDelayTable:
    def test_matches_formula_on_grid(self):
        table = linear_delay_table(0.02, 3.0, 0.08, SLEWS, LOADS)
        for s in SLEWS:
            for l in LOADS:
                expected = 0.02 + 3.0 * l * 1e-3 + 0.08 * s
                assert table.lookup(s, l) == pytest.approx(expected)

    @given(
        slew=st.floats(min_value=0.01, max_value=0.2),
        load=st.floats(min_value=1.0, max_value=16.0),
    )
    def test_interpolation_is_exact_for_bilinear_data(self, slew, load):
        """Bilinear interpolation reproduces any bilinear function exactly."""
        table = linear_delay_table(0.02, 3.0, 0.08, SLEWS, LOADS)
        expected = 0.02 + 3.0 * load * 1e-3 + 0.08 * slew
        assert table.lookup(slew, load) == pytest.approx(expected, rel=1e-9)

    @given(
        s1=st.floats(min_value=0.01, max_value=0.2),
        s2=st.floats(min_value=0.01, max_value=0.2),
        load=st.floats(min_value=1.0, max_value=16.0),
    )
    def test_monotone_in_slew(self, s1, s2, load):
        table = linear_delay_table(0.02, 3.0, 0.08, SLEWS, LOADS)
        lo, hi = sorted((s1, s2))
        assert table.lookup(lo, load) <= table.lookup(hi, load) + 1e-12
