"""Incremental STA (:class:`TimingSession`): equivalence and behaviour.

The contract under test is exact equivalence: given the same netlist
state and the same :class:`DelayCalculator`, a session report must match
a from-scratch :func:`run_sta` bit for bit -- same WNS/TNS, same
endpoint-slack dict (values *and* insertion order, which fixes the
worst-endpoint tie-break), same per-cell slacks, same backtraced
critical path.  A Hypothesis property drives random sequences of the
edits the flows actually perform (resize, clone, buffer insertion, tier
move), each paired with the standard ``calc.invalidate(net)`` calls, and
checks equivalence after every step.
"""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.incremental import SessionStats, TimingSession
from repro.timing.sta import run_sta, top_critical_paths

LIB12, LIB9 = make_library_pair()
LIBS = {LIB12.name: LIB12, LIB9.name: LIB9}


def make_calc(nl: Netlist) -> DelayCalculator:
    return DelayCalculator(nl, FanoutWireModel(LIB12), LIBS)


def pipeline(depth: int, lib=LIB12) -> Netlist:
    """clk + din -> FF -> INV*depth -> FF (same shape test_sta uses)."""
    nl = Netlist("pipe")
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nl.add_port("din", PortDirection.INPUT)
    nl.add_instance("ff_a", lib.get(CellFunction.DFF, 1))
    nl.connect("din", "ff_a", "D")
    nl.connect("clk", "ff_a", "CK")
    nl.add_net("qa")
    nl.connect("qa", "ff_a", "Q")
    prev = "qa"
    for i in range(depth):
        nl.add_instance(f"g{i}", lib.get(CellFunction.INV, 2))
        nl.add_net(f"n{i}")
        nl.connect(prev, f"g{i}", "A")
        nl.connect(f"n{i}", f"g{i}", "Y")
        prev = f"n{i}"
    nl.add_instance("ff_b", lib.get(CellFunction.DFF, 1))
    nl.connect(prev, "ff_b", "D")
    nl.connect("clk", "ff_b", "CK")
    return nl


def assert_reports_equal(inc, ref):
    assert inc.wns_ns == ref.wns_ns
    assert inc.tns_ns == ref.tns_ns
    assert inc.endpoint_slacks == ref.endpoint_slacks
    # dict order fixes the worst-endpoint tie-break; require it too
    assert list(inc.endpoint_slacks) == list(ref.endpoint_slacks)
    assert inc.cell_slack == ref.cell_slack
    assert inc.critical_path == ref.critical_path


# ----------------------------------------------------------------------
# flow-style edits, each with the invalidation calls the flows make
# ----------------------------------------------------------------------
def _invalidate_around(calc, inst):
    for _pin, net_name in inst.connected_pins():
        calc.invalidate(net_name)


def _comb_instances(nl):
    return [
        i
        for i in nl.instances.values()
        if not i.cell.is_sequential and not i.cell.is_macro
    ]


def edit_resize(nl, calc, pick):
    cands = _comb_instances(nl)
    if not cands:
        return False
    inst = cands[pick % len(cands)]
    lib = LIBS[inst.cell.library_name]
    new_cell = lib.upsize(inst.cell) or lib.downsize(inst.cell)
    if new_cell is None:
        return False
    nl.rebind(inst.name, new_cell)
    _invalidate_around(calc, inst)
    return True


def edit_clone(nl, calc, pick):
    cands = [
        i
        for i in _comb_instances(nl)
        if i.net_of(i.cell.output_pin) is not None
        and len(nl.nets[i.net_of(i.cell.output_pin)].sinks) >= 2
    ]
    if not cands:
        return False
    inst = cands[pick % len(cands)]
    out_pin = inst.cell.output_pin
    out_net_name = inst.net_of(out_pin)
    moved = list(nl.nets[out_net_name].sinks)[: len(nl.nets[out_net_name].sinks) // 2]
    clone_name = nl.unique_name(inst.name + "_cl")
    clone = nl.add_instance(clone_name, inst.cell, block=inst.block)
    clone.tier = inst.tier
    for pin in inst.cell.input_pins:
        in_net = inst.net_of(pin)
        if in_net is not None:
            nl.connect(in_net, clone_name, pin)
    new_net = nl.add_net(nl.unique_name(out_net_name + "_cl"))
    nl.connect(new_net.name, clone_name, out_pin)
    for sink_name, pin in moved:
        nl.disconnect(sink_name, pin)
        nl.connect(new_net.name, sink_name, pin)
    for pin in inst.cell.input_pins:  # clone added load on every input net
        in_net = inst.net_of(pin)
        if in_net is not None:
            calc.invalidate(in_net)
    calc.invalidate(out_net_name)
    calc.invalidate(new_net.name)
    return True


def edit_buffer(nl, calc, pick):
    cands = [
        n
        for n in nl.nets.values()
        if not n.is_clock and n.driver is not None and len(n.sinks) >= 2
    ]
    if not cands:
        return False
    net = cands[pick % len(cands)]
    driver = nl.instances[net.driver[0]]
    lib = LIBS[driver.cell.library_name]
    buf_cell = lib.get(CellFunction.BUF, lib.drives_for(CellFunction.BUF)[0])
    moved = list(net.sinks)[1:]
    buf_name = nl.unique_name("tbuf")
    buf = nl.add_instance(buf_name, buf_cell, block=driver.block)
    buf.tier = driver.tier
    new_net = nl.add_net(nl.unique_name("tbufn"))
    nl.connect(net.name, buf_name, "A")
    nl.connect(new_net.name, buf_name, "Y")
    for sink_name, pin in moved:
        nl.disconnect(sink_name, pin)
        nl.connect(new_net.name, sink_name, pin)
    calc.invalidate(net.name)
    calc.invalidate(new_net.name)
    return True


def edit_tier_move(nl, calc, pick):
    cands = _comb_instances(nl)
    if not cands:
        return False
    inst = cands[pick % len(cands)]
    target = LIB9 if inst.cell.library_name == LIB12.name else LIB12
    inst.tier = 1 - (inst.tier or 0)
    nl.rebind(inst.name, target.equivalent_of(inst.cell))
    _invalidate_around(calc, inst)
    return True


EDITS = [edit_resize, edit_clone, edit_buffer, edit_tier_move]


# ----------------------------------------------------------------------
# Hypothesis property: any edit sequence stays equivalent to run_sta
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


class TestEquivalenceProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        netlist_seed=st.integers(0, 3),
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 10_000)),
            min_size=1,
            max_size=8,
        ),
        period=st.sampled_from([0.6, 0.9, 1.3]),
    )
    def test_random_edits_match_full_sta(self, netlist_seed, ops, period):
        nl = generate_netlist("aes", LIB12, scale=0.1, seed=netlist_seed)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        session.report(period)  # warm: later reports exercise the cone path
        for op_idx, pick in ops:
            EDITS[op_idx % len(EDITS)](nl, calc, pick)
            inc = session.report(period, with_cell_slacks=True)
            ref = run_sta(nl, calc, period, with_cell_slacks=True)
            assert_reports_equal(inc, ref)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        periods=st.lists(
            st.floats(0.3, 2.5, allow_nan=False), min_size=1, max_size=6
        ),
        pick=st.integers(0, 10_000),
    )
    def test_period_sweep_matches_full_sta(self, periods, pick):
        nl = generate_netlist("aes", LIB12, scale=0.1, seed=1)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        edit_resize(nl, calc, pick)
        for period in periods:
            inc = session.report(period, with_cell_slacks=True)
            ref = run_sta(nl, calc, period, with_cell_slacks=True)
            assert_reports_equal(inc, ref)


# ----------------------------------------------------------------------
# deterministic behaviour tests
# ----------------------------------------------------------------------
class TestSessionBehaviour:
    def test_clean_repeat_reuses_arrivals(self):
        nl = pipeline(8)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        first = session.report(1.0)
        second = session.report(1.0)
        assert session.stats.full_runs == 1
        assert session.stats.reused_runs == 1
        assert_reports_equal(first, second)

    def test_period_probes_share_one_propagation(self):
        nl = pipeline(10)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        for period in (2.0, 1.0, 0.7, 0.5, 1.5):
            inc = session.report(period, with_cell_slacks=False)
            ref = run_sta(nl, calc, period, with_cell_slacks=False)
            assert inc.endpoint_slacks == ref.endpoint_slacks
            assert inc.wns_ns == ref.wns_ns
        assert session.stats.full_runs == 1
        assert session.stats.reused_runs == 4

    def test_local_edit_goes_incremental(self):
        nl = pipeline(12)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        session.report(1.0)
        # resize the last inverter: its cone is a tiny tail of the chain
        nl.rebind("g11", LIB12.upsize(nl.instances["g11"].cell))
        _invalidate_around(calc, nl.instances["g11"])
        inc = session.report(1.0)
        assert session.stats.incremental_runs == 1
        assert session.stats.last_cone_size < 12
        assert_reports_equal(inc, run_sta(nl, calc, 1.0))

    def test_kill_switch_forces_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_STA", "full")
        nl = pipeline(8)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        r1 = session.report(1.0)
        r2 = session.report(1.0)
        assert session.stats.full_runs == 2
        assert session.stats.incremental_runs == 0
        assert session.stats.reused_runs == 0
        assert_reports_equal(r1, r2)
        assert_reports_equal(r1, run_sta(nl, calc, 1.0))

    def test_threshold_fallback_rebuilds(self):
        nl = pipeline(8)
        calc = make_calc(nl)
        session = TimingSession(nl, calc, full_fraction=0.0)
        session.report(1.0)
        nl.rebind("g7", LIB12.upsize(nl.instances["g7"].cell))
        _invalidate_around(calc, nl.instances["g7"])
        session.report(1.0)
        assert session.stats.full_runs == 2
        assert session.stats.incremental_runs == 0

    def test_full_invalidate_forces_rebuild(self):
        nl = pipeline(8)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        session.report(1.0)
        calc.invalidate()  # whole-graph invalidation, flow2d idiom
        session.report(1.0)
        assert session.stats.full_runs == 2

    def test_top_paths_match_top_critical_paths(self):
        nl = generate_netlist("aes", LIB12, scale=0.1, seed=2)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        report = session.report(0.8)
        assert session.top_paths(report, 5) == top_critical_paths(
            nl, calc, report, 5
        )

    def test_clock_latency_swap_rebuilds(self):
        nl = pipeline(6)
        calc = make_calc(nl)
        session = TimingSession(nl, calc)
        session.report(1.0)
        latencies = {"ff_a": 0.05, "ff_b": 0.02}
        session.set_clock_latencies(latencies)
        inc = session.report(1.0)
        assert session.stats.full_runs == 2
        assert_reports_equal(inc, run_sta(nl, calc, 1.0, latencies))

    def test_period_must_be_positive(self):
        from repro.errors import TimingError

        nl = pipeline(4)
        session = TimingSession(nl, make_calc(nl))
        with pytest.raises(TimingError):
            session.report(0.0)

    def test_propagated_fraction_stat(self):
        stats = SessionStats(
            full_runs=1,
            incremental_runs=1,
            propagated_instances=15,
            graph_instances=10,
        )
        assert stats.reports == 2
        assert stats.propagated_fraction == pytest.approx(0.75)


class TestDesignClockLatencyCache:
    def _report(self, value):
        from repro.cts.tree import ClockReport

        return ClockReport(
            buffer_count=1,
            buffer_count_by_tier={0: 1},
            buffer_area_um2=1.0,
            wirelength_mm=0.1,
            max_latency_ns=value,
            min_latency_ns=value,
            power_mw=0.0,
            latencies={"ff_a": value},
        )

    def test_snapshot_is_cached_until_report_changes(self):
        from repro.flow.design import Design

        nl = pipeline(4)
        design = Design("d", "2d", nl, {0: LIB12})
        assert design.clock_latencies() is None
        design.clock_report = self._report(0.04)
        first = design.clock_latencies()
        assert first == {"ff_a": 0.04}
        assert design.clock_latencies() is first  # stable identity
        design.clock_report = self._report(0.09)  # CTS reran
        second = design.clock_latencies()
        assert second == {"ff_a": 0.09}
        assert second is not first
        design.clock_report = None
        assert design.clock_latencies() is None
