"""Tests for the FO-4 boundary-cell model (repro.liberty.spice).

The homogeneous baselines are calibrated to Table II; every test on the
heterogeneous mixes checks a *prediction* of the model against the signs
(and magnitude classes) the paper published.
"""

import pytest
from hypothesis import given, strategies as st

from repro.liberty.spice import (
    FAST_INVERTER,
    SLOW_INVERTER,
    input_voltage_delay_factor,
    input_voltage_leakage_factor,
    input_voltage_slew_factor,
    overdrive_ratio,
    simulate_fo4_input_boundary,
    simulate_fo4_output_boundary,
)


class TestBaselines:
    """Case-I and Case-III of Table II are calibration anchors."""

    def test_fast_fast_matches_table2_case1(self):
        r = simulate_fo4_output_boundary(FAST_INVERTER, FAST_INVERTER)
        assert r.rise_slew_ps == pytest.approx(15.6)
        assert r.fall_slew_ps == pytest.approx(18.2)
        assert r.rise_delay_ps == pytest.approx(12.5)
        assert r.fall_delay_ps == pytest.approx(16.4)
        assert r.leakage_uw == pytest.approx(0.093, rel=1e-6)
        assert r.total_power_uw == pytest.approx(3.86, rel=1e-6)

    def test_slow_slow_matches_table2_case3(self):
        r = simulate_fo4_output_boundary(SLOW_INVERTER, SLOW_INVERTER)
        assert r.rise_delay_ps == pytest.approx(23.6)
        assert r.fall_delay_ps == pytest.approx(26.2)
        assert r.leakage_uw == pytest.approx(0.003, rel=1e-6)
        assert r.total_power_uw == pytest.approx(2.00, rel=1e-6)


class TestOutputBoundary:
    """Fig. 2(a) / Table II: driver and load on different tiers."""

    def test_fast_driver_slow_load_speeds_up(self):
        base = simulate_fo4_output_boundary(FAST_INVERTER, FAST_INVERTER)
        mixed = simulate_fo4_output_boundary(FAST_INVERTER, SLOW_INVERTER)
        d = mixed.delta_pct(base)
        # smaller 9T input caps -> everything gets faster, power drops
        assert d["rise_delay"] < 0
        assert d["fall_delay"] < 0
        assert d["rise_slew"] < 0
        assert d["fall_slew"] < 0
        assert d["total_power"] < 0

    def test_slow_driver_fast_load_slows_down(self):
        base = simulate_fo4_output_boundary(SLOW_INVERTER, SLOW_INVERTER)
        mixed = simulate_fo4_output_boundary(SLOW_INVERTER, FAST_INVERTER)
        d = mixed.delta_pct(base)
        assert d["rise_delay"] > 0
        assert d["fall_delay"] > 0
        assert d["total_power"] > 0

    def test_slew_change_within_pm25pct(self):
        """Paper: 'the slew changes only by at most +-15%' (we allow 25%)."""
        for driver, load in (
            (FAST_INVERTER, SLOW_INVERTER),
            (SLOW_INVERTER, FAST_INVERTER),
        ):
            base = simulate_fo4_output_boundary(driver, driver)
            mixed = simulate_fo4_output_boundary(driver, load)
            d = mixed.delta_pct(base)
            assert abs(d["rise_slew"]) <= 25
            assert abs(d["fall_slew"]) <= 25

    def test_leakage_nearly_unchanged_at_output_boundary(self):
        """Table II: leakage deltas are -0.3% / -1.3% (driver-dominated)."""
        base = simulate_fo4_output_boundary(FAST_INVERTER, FAST_INVERTER)
        mixed = simulate_fo4_output_boundary(FAST_INVERTER, SLOW_INVERTER)
        assert mixed.leakage_uw == pytest.approx(base.leakage_uw, rel=0.05)

    def test_power_delta_is_small(self):
        """Table II: -4.3% and +9.0%; load weight keeps it in that class."""
        base_f = simulate_fo4_output_boundary(FAST_INVERTER, FAST_INVERTER)
        mix_f = simulate_fo4_output_boundary(FAST_INVERTER, SLOW_INVERTER)
        assert -12 < mix_f.delta_pct(base_f)["total_power"] < 0
        base_s = simulate_fo4_output_boundary(SLOW_INVERTER, SLOW_INVERTER)
        mix_s = simulate_fo4_output_boundary(SLOW_INVERTER, FAST_INVERTER)
        assert 0 < mix_s.delta_pct(base_s)["total_power"] < 15


class TestInputBoundary:
    """Fig. 2(b) / Table III: driver input from the other tier's rail."""

    def test_fast_cell_with_low_rail_input(self):
        base = simulate_fo4_output_boundary(FAST_INVERTER, FAST_INVERTER)
        mixed = simulate_fo4_input_boundary(FAST_INVERTER, SLOW_INVERTER)
        d = mixed.delta_pct(base)
        # underdriven gate: everything slightly slower
        assert 0 < d["rise_delay"] < 10
        assert 0 < d["fall_delay"] < 10
        assert 0 < d["rise_slew"] < 15
        # leakage explodes (paper: +250%)
        assert 150 < d["leakage"] < 400
        # total power rises mildly (paper: +9.2%)
        assert 0 < d["total_power"] < 20

    def test_slow_cell_with_high_rail_input(self):
        base = simulate_fo4_output_boundary(SLOW_INVERTER, SLOW_INVERTER)
        mixed = simulate_fo4_input_boundary(SLOW_INVERTER, FAST_INVERTER)
        d = mixed.delta_pct(base)
        # overdriven gate: faster, and the off-device leaks less
        assert d["rise_delay"] < 0
        assert d["fall_delay"] < 0
        assert -70 < d["leakage"] < -20  # paper: -44.9%
        assert abs(d["total_power"]) < 5  # paper: -0.6%

    def test_leakage_asymmetry(self):
        """Leakage up for fast<-slow is much larger than down for slow<-fast."""
        up = input_voltage_leakage_factor(0.90, 0.30, 0.81)
        down = input_voltage_leakage_factor(0.81, 0.32, 0.90)
        assert up > 2.0
        assert 0.3 < down < 1.0
        assert (up - 1.0) > (1.0 - down)


class TestDerateFunctions:
    def test_overdrive_ratio_identity(self):
        assert overdrive_ratio(0.9, 0.3, 0.9) == pytest.approx(1.0)

    def test_same_rail_factors_are_unity(self):
        assert input_voltage_delay_factor(0.9, 0.3, 0.9) == pytest.approx(1.0)
        assert input_voltage_slew_factor(0.9, 0.3, 0.9) == pytest.approx(1.0)
        assert input_voltage_leakage_factor(0.9, 0.3, 0.9) == pytest.approx(1.0)

    @given(vg=st.floats(min_value=0.5, max_value=1.2))
    def test_delay_factor_monotone_decreasing_in_vg(self, vg):
        f_lo = input_voltage_delay_factor(0.9, 0.3, vg)
        f_hi = input_voltage_delay_factor(0.9, 0.3, vg + 0.05)
        assert f_hi <= f_lo + 1e-12

    @given(vg=st.floats(min_value=0.6, max_value=1.1))
    def test_leakage_factor_positive(self, vg):
        assert input_voltage_leakage_factor(0.9, 0.3, vg) > 0

    def test_overdrive_requires_vdd_above_vth(self):
        with pytest.raises(ValueError):
            overdrive_ratio(0.2, 0.3, 0.2)
