"""The DSE config lattice: paper ranges, compatibility, ordering."""

from __future__ import annotations

import pytest

from repro.experiments.dse.space import (
    TIER_CAP_RANGE,
    DseConfig,
    LatticeSpec,
    build_library,
    generate_lattice,
)


def test_tier_caps_outside_paper_range_rejected():
    with pytest.raises(ValueError, match="pinning range"):
        LatticeSpec(tier_caps=(0.15,))
    with pytest.raises(ValueError, match="pinning range"):
        LatticeSpec(tier_caps=(0.25, 0.35))
    # The boundary values themselves are legal.
    LatticeSpec(tier_caps=TIER_CAP_RANGE)


def test_fm_tolerance_and_empty_axis_validation():
    with pytest.raises(ValueError, match="tolerances"):
        LatticeSpec(fm_tolerances=(0.0,))
    with pytest.raises(ValueError, match="at least one value"):
        LatticeSpec(slow_vdd=())


def test_lattice_size_and_order():
    spec = LatticeSpec(
        slow_tracks=(8, 9), slow_vdd=(0.90,),
        tier_caps=(0.20, 0.30), fm_tolerances=(0.10,),
    )
    assert spec.size == 4
    runnable, incompatible = generate_lattice(spec)
    assert len(runnable) + len(incompatible) == spec.size
    # Lexicographic order, last axis fastest: consecutive runnable
    # configs are near-neighbors, which is what warm starts rely on.
    labels = [c.label for c in runnable]
    assert labels == sorted(labels) == [
        "8T@0.900V/cap0.200/fm0.100",
        "8T@0.900V/cap0.300/fm0.100",
        "9T@0.900V/cap0.200/fm0.100",
        "9T@0.900V/cap0.300/fm0.100",
    ]


def test_voltage_margin_rule_classifies_incompatible():
    """0.63 V against the 12T fast die at 0.90 V breaks the 0.3*V_DDH
    margin, so every config at that corner is reported, never run."""
    spec = LatticeSpec(
        slow_tracks=(8,), slow_vdd=(0.62, 0.90),
        tier_caps=(0.25,), fm_tolerances=(0.10,),
    )
    runnable, incompatible = generate_lattice(spec)
    assert [c.slow_vdd for c in runnable] == [0.90]
    assert len(incompatible) == 1
    cfg, reason = incompatible[0]
    assert cfg.slow_vdd == 0.62
    assert "0.3*V_DDH" in reason
    # And the classification agrees with the actual library objects.
    fast = spec.fast_library()
    assert not fast.voltage_compatible_with(build_library(8, 0.62))
    assert fast.voltage_compatible_with(build_library(8, 0.90))


def test_unconstructable_corner_reported_not_raised():
    """A supply below the slow library's vth floor cannot build a
    library at all; the lattice reports it instead of crashing."""
    spec = LatticeSpec(
        slow_tracks=(8,), slow_vdd=(0.10,),
        tier_caps=(0.25,), fm_tolerances=(0.10,),
    )
    runnable, incompatible = generate_lattice(spec)
    assert not runnable
    assert "unconstructable" in incompatible[0][1]


def test_config_round_trip_and_distance():
    spec = LatticeSpec()
    cfg = DseConfig(8, 0.70, 0.25, 0.10)
    assert DseConfig.from_dict(cfg.to_dict()) == cfg
    assert LatticeSpec.from_dict(spec.to_dict()) == spec
    other = DseConfig(9, 0.75, 0.25, 0.10)
    # one track step + one vdd step on the default axes
    assert spec.distance(cfg, other) == spec.distance(other, cfg) == 2
    assert spec.distance(cfg, cfg) == 0


def test_build_library_memoizes():
    assert build_library(8, 0.90) is build_library(8, 0.90)
