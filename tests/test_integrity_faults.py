"""Every ``corrupt_design`` op is caught at the next stage boundary.

For each op in ``CORRUPT_OP_CHECKS`` the fault is injected at a stage
whose postcondition contract includes the op's checker class, the flow
runs in strict mode, and the resulting ``IntegrityError`` must name
that stage and carry a violation from the expected checker -- no silent
propagation into results.
"""

import pytest

from repro.errors import IntegrityError
from repro.experiments import faults
from repro.experiments.faults import CORRUPT_OP_CHECKS
from repro.flow import run_flow_2d, run_flow_hetero_3d
from repro.liberty.presets import (
    make_library_pair,
    make_track_variant,
    make_twelve_track_library,
)

SCALE = 0.15


@pytest.fixture
def fault_env(monkeypatch):
    def set_faults(spec: str) -> None:
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
        faults.reset_fault_state()

    yield set_faults
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_fault_state()


def _run_2d(check="strict"):
    return run_flow_2d(
        "aes", make_twelve_track_library(), period_ns=1.0,
        scale=SCALE, seed=2, check=check,
    )


#: op -> stage whose contract covers the op's checker class (2-D flow).
SITES_2D = {
    "dangling_net": "legalization",
    "undriven_net": "legalization",
    "floating_input": "legalization",
    "stale_ref": "legalization",
    "overlap": "legalization",
    "out_of_floorplan": "legalization",
    "row_misalign": "legalization",
    "bad_tier": "legalization",
    "comb_loop": "optimize",
}


@pytest.mark.parametrize("op", sorted(SITES_2D))
def test_corruption_caught_at_next_boundary_2d(op, fault_env):
    site = SITES_2D[op]
    fault_env(f"site={site},kind=corrupt_design,op={op}")
    with pytest.raises(IntegrityError) as excinfo:
        _run_2d()
    err = excinfo.value
    assert err.context.get("stage") == site
    expected = CORRUPT_OP_CHECKS[op]
    assert any(v.check == expected for v in err.violations), (
        f"op {op} not flagged by the {expected} check: "
        f"{[str(v) for v in err.violations]}"
    )


def test_wrong_library_caught_in_hetero(fault_env):
    fault_env("site=legalization,kind=corrupt_design,op=wrong_library")
    lib12, lib9 = make_library_pair()
    with pytest.raises(IntegrityError) as excinfo:
        run_flow_hetero_3d(
            "aes", lib12, lib9, period_ns=1.0, scale=SCALE, seed=2,
            repartition=False, check="strict",
        )
    err = excinfo.value
    assert err.context.get("stage") == "legalization"
    assert any(v.check == "tiers" for v in err.violations)


def test_drop_shifter_caught_in_shifter_flow(fault_env):
    fault_env("site=level_shift,kind=corrupt_design,op=drop_shifter")
    lib12, _ = make_library_pair()
    low = make_track_variant(9, vdd_v=0.55)
    with pytest.raises(IntegrityError) as excinfo:
        run_flow_hetero_3d(
            "aes", lib12, low, period_ns=1.0, scale=SCALE, seed=2,
            repartition=False, allow_level_shifters=True, check="strict",
        )
    err = excinfo.value
    assert err.context.get("stage") == "level_shift"
    assert any(
        v.check == "tiers" and v.code == "missing-level-shifter"
        for v in err.violations
    )


def test_every_op_has_a_detection_test():
    """Adding a new corrupt op without wiring a detection test fails."""
    covered = set(SITES_2D) | {"wrong_library", "drop_shifter"}
    assert covered == set(CORRUPT_OP_CHECKS)


def test_repair_mode_fixes_overlap_and_completes(fault_env):
    fault_env("site=legalization,kind=corrupt_design,op=overlap")
    design, result = _run_2d(check="repair")
    from repro.integrity import check_design

    assert result is not None
    assert check_design(design) == []


def test_warn_mode_does_not_abort(fault_env):
    fault_env("site=legalization,kind=corrupt_design,op=overlap")
    design, result = _run_2d(check="warn")
    assert result is not None
