"""Tests for synthesis stand-in (repro.flow.synthesis)."""

import pytest

from repro.flow.design import Design
from repro.flow.synthesis import (
    find_max_frequency,
    fix_drv_violations,
    initial_sizing,
    max_drv_load_ff,
)
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def make_design(pair, lib_index=0, name="cpu", period=1.0, scale=0.3):
    lib = pair[lib_index]
    nl = generate_netlist(name, lib, scale=scale, seed=17)
    return Design(
        name=name, config="x", netlist=nl, tier_libs={0: lib},
        target_period_ns=period,
    )


class TestDrvRules:
    def test_slow_library_has_stricter_limit(self, pair):
        lib12, lib9 = pair
        assert max_drv_load_ff(lib9) < max_drv_load_ff(lib12)

    def test_fix_splits_overloaded_net(self, pair):
        lib12, _ = pair
        nl = Netlist("fan")
        nl.add_port("din", PortDirection.INPUT)
        nl.add_instance("drv", lib12.get(CellFunction.INV, 1))
        nl.connect("din", "drv", "A")
        nl.add_net("big")
        nl.connect("big", "drv", "Y")
        # 60 x4 sinks: far beyond the 12T max-cap rule
        for i in range(60):
            nl.add_instance(f"s{i}", lib12.get(CellFunction.INV, 4))
            nl.connect("big", f"s{i}", "A")
        design = Design("fan", "x", nl, {0: lib12})
        added = fix_drv_violations(design)
        assert added >= 2
        nl.validate()
        limit = max_drv_load_ff(lib12)
        for net in nl.nets.values():
            if net.driver is None or net.is_clock:
                continue
            load = sum(
                nl.instances[s].cell.input_capacitance_ff(p)
                for s, p in net.sinks
            )
            assert load <= limit * 1.5  # buffers themselves respect the rule

    def test_fix_is_idempotent_when_clean(self, pair):
        design = make_design(pair, name="aes", scale=0.2)
        fix_drv_violations(design)
        assert fix_drv_violations(design) == 0


class TestInitialSizing:
    def test_resizes_loaded_drivers(self, pair):
        design = make_design(pair)
        resized = initial_sizing(design)
        assert resized > 0
        design.netlist.validate()

    def test_aggressive_target_inflates_slow_library_more(self, pair):
        """The 9-track over-correction: same netlist, same target, the
        slow library spends far more area in synthesis (Section IV-B2)."""
        # 1.3 ns: comfortably closable in 12-track, straining in 9-track
        d12 = make_design(pair, lib_index=0, period=1.3)
        d9 = make_design(pair, lib_index=1, period=1.3)
        base12 = d12.netlist.cell_area_um2()
        base9 = d9.netlist.cell_area_um2()
        initial_sizing(d12)
        initial_sizing(d9)
        growth12 = d12.netlist.cell_area_um2() / base12
        growth9 = d9.netlist.cell_area_um2() / base9
        assert growth9 > growth12


class TestMaxFrequencySearch:
    def test_monotone_flow_converges(self):
        """Search a synthetic closure function with known max frequency."""

        def flow(period):
            wns = period - 0.8  # closes exactly at 0.8ns
            return wns, period

        best = find_max_frequency(
            flow, lo_period_ns=0.2, hi_period_ns=3.0, iterations=10
        )
        # acceptance allows wns >= -7% of the period, so the search may
        # close slightly below the exact 0.8ns crossover
        assert 0.70 <= best <= 0.83

    def test_returns_upper_bound_when_nothing_closes(self):
        def flow(period):
            return -1.0, period

        best = find_max_frequency(flow, lo_period_ns=0.2, hi_period_ns=1.0)
        assert best == 1.0
