"""Tests for the STA engine (repro.timing.sta) on hand-built circuits."""

import pytest

from repro.errors import TimingError
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.sta import run_sta, top_critical_paths


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def make_calc(pair, nl):
    lib12, lib9 = pair
    return DelayCalculator(
        nl, FanoutWireModel(lib12), {lib12.name: lib12, lib9.name: lib9}
    )


def pipeline(lib, depth):
    """clk + din -> FF -> INV*depth -> FF."""
    nl = Netlist("pipe")
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nl.add_port("din", PortDirection.INPUT)
    nl.add_instance("ff_a", lib.get(CellFunction.DFF, 1))
    nl.connect("din", "ff_a", "D")
    nl.connect("clk", "ff_a", "CK")
    nl.add_net("qa")
    nl.connect("qa", "ff_a", "Q")
    prev = "qa"
    for i in range(depth):
        nl.add_instance(f"g{i}", lib.get(CellFunction.INV, 2))
        nl.add_net(f"n{i}")
        nl.connect(prev, f"g{i}", "A")
        nl.connect(f"n{i}", f"g{i}", "Y")
        prev = f"n{i}"
    nl.add_instance("ff_b", lib.get(CellFunction.DFF, 1))
    nl.connect(prev, "ff_b", "D")
    nl.connect("clk", "ff_b", "CK")
    return nl


class TestBasics:
    def test_period_must_be_positive(self, pair):
        nl = pipeline(pair[0], 2)
        calc = make_calc(pair, nl)
        with pytest.raises(TimingError):
            run_sta(nl, calc, 0.0)

    def test_deeper_pipeline_has_less_slack(self, pair):
        nl2 = pipeline(pair[0], 2)
        nl8 = pipeline(pair[0], 8)
        r2 = run_sta(nl2, make_calc(pair, nl2), 1.0)
        r8 = run_sta(nl8, make_calc(pair, nl8), 1.0)
        assert r8.wns_ns < r2.wns_ns

    def test_slack_scales_with_period(self, pair):
        nl = pipeline(pair[0], 4)
        calc = make_calc(pair, nl)
        r_fast = run_sta(nl, calc, 0.2)
        r_slow = run_sta(nl, calc, 1.0)
        assert r_slow.wns_ns == pytest.approx(r_fast.wns_ns + 0.8, abs=1e-9)

    def test_wns_is_min_endpoint_slack(self, pair):
        nl = pipeline(pair[0], 4)
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        assert r.wns_ns == pytest.approx(min(r.endpoint_slacks.values()))

    def test_tns_sums_only_negative(self, pair):
        nl = pipeline(pair[0], 8)
        r = run_sta(nl, make_calc(pair, nl), 0.15)
        assert r.tns_ns <= r.wns_ns < 0

    def test_effective_delay(self, pair):
        nl = pipeline(pair[0], 4)
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        assert r.effective_delay_ns == pytest.approx(0.5 - r.wns_ns)
        assert r.frequency_ghz == pytest.approx(2.0)

    def test_timing_met_band(self, pair):
        nl = pipeline(pair[0], 2)
        calc = make_calc(pair, nl)
        r = run_sta(nl, calc, 1.0)
        assert r.timing_met()


class TestCriticalPath:
    def test_path_depth_matches_pipeline(self, pair):
        nl = pipeline(pair[0], 6)
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        cp = r.critical_path
        # 6 inverters + the launching flip-flop
        assert cp.total_cells == 7
        assert cp.endpoint == ("ff_b", "D")
        assert cp.steps[0].instance == "ff_a"

    def test_path_delay_consistent_with_slack(self, pair):
        nl = pipeline(pair[0], 6)
        period = 0.5
        r = run_sta(nl, make_calc(pair, nl), period)
        cp = r.critical_path
        reconstructed = (
            period + cp.clock_skew_ns - cp.setup_ns - cp.path_delay_ns
        )
        assert reconstructed == pytest.approx(cp.slack_ns, abs=1e-6)

    def test_tier_breakdowns(self, pair):
        nl = pipeline(pair[0], 6)
        for i in (1, 3):
            nl.instances[f"g{i}"].tier = 1
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        cp = r.critical_path
        assert cp.cells_on_tier(1) == 2
        assert cp.cells_on_tier(0) == cp.total_cells - 2
        assert cp.miv_count >= 2
        assert cp.cell_delay_ns == pytest.approx(
            cp.cell_delay_on_tier(0) + cp.cell_delay_on_tier(1)
        )

    def test_top_paths_sorted_worst_first(self, pair):
        nl = pipeline(pair[0], 6)
        calc = make_calc(pair, nl)
        r = run_sta(nl, calc, 0.2)
        paths = top_critical_paths(nl, calc, r, 2)
        assert len(paths) >= 1
        assert paths[0].slack_ns == pytest.approx(r.wns_ns)


class TestClockLatencies:
    def test_useful_skew_shifts_slack(self, pair):
        nl = pipeline(pair[0], 6)
        calc = make_calc(pair, nl)
        base = run_sta(nl, calc, 0.5)
        # capture FF gets extra latency: setup slack improves by the skew
        skewed = run_sta(nl, calc, 0.5, {"ff_b": 0.1, "ff_a": 0.0})
        assert skewed.wns_ns == pytest.approx(base.wns_ns + 0.1, abs=1e-9)

    def test_launch_latency_hurts(self, pair):
        nl = pipeline(pair[0], 6)
        calc = make_calc(pair, nl)
        base = run_sta(nl, calc, 0.5)
        skewed = run_sta(nl, calc, 0.5, {"ff_a": 0.1})
        assert skewed.wns_ns == pytest.approx(base.wns_ns - 0.1, abs=1e-9)


class TestCellSlacks:
    def test_chain_cells_share_worst_slack(self, pair):
        """Every cell of a single path sees the path's slack."""
        nl = pipeline(pair[0], 5)
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        slacks = [r.cell_slack[f"g{i}"] for i in range(5)]
        for s in slacks:
            assert s == pytest.approx(r.wns_ns, abs=1e-6)

    def test_side_branch_has_more_slack(self, pair):
        lib12 = pair[0]
        nl = pipeline(lib12, 6)
        # attach a 1-gate side branch to the middle of the chain
        nl.add_instance("side", lib12.get(CellFunction.INV, 1))
        nl.add_net("sb")
        nl.connect("n2", "side", "A")
        nl.connect("sb", "side", "Y")
        nl.add_instance("ff_s", lib12.get(CellFunction.DFF, 1))
        nl.connect("sb", "ff_s", "D")
        nl.connect("clk", "ff_s", "CK")
        r = run_sta(nl, make_calc(pair, nl), 0.5)
        assert r.cell_slack["side"] > r.cell_slack["g5"]

    def test_skipping_cell_slacks_is_faster_path(self, pair):
        nl = pipeline(pair[0], 5)
        calc = make_calc(pair, nl)
        r = run_sta(nl, calc, 0.5, with_cell_slacks=False)
        assert r.cell_slack == {}


class TestHeterogeneousTiming:
    def test_slow_library_path_is_slower(self, pair):
        lib12, lib9 = pair
        nl12 = pipeline(lib12, 6)
        nl9 = pipeline(lib9, 6)
        r12 = run_sta(nl12, make_calc(pair, nl12), 0.5)
        r9 = run_sta(nl9, make_calc(pair, nl9), 0.5)
        assert r9.wns_ns < r12.wns_ns

    def test_mixed_path_between_pure_paths(self, pair):
        lib12, lib9 = pair
        nl = pipeline(lib12, 6)
        for i in (0, 2, 4):
            nl.rebind(f"g{i}", lib9.equivalent_of(nl.instances[f"g{i}"].cell))
            nl.instances[f"g{i}"].tier = 1
        mixed = run_sta(nl, make_calc(pair, nl), 0.5)
        pure12 = run_sta(
            pipeline(lib12, 6), make_calc(pair, pipeline(lib12, 6)), 0.5
        )
        pure9 = run_sta(
            pipeline(lib9, 6), make_calc(pair, pipeline(lib9, 6)), 0.5
        )
        assert pure9.wns_ns < mixed.wns_ns < pure12.wns_ns
