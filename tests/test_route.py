"""Tests for routing estimation (repro.route)."""

import pytest

from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place
from repro.route.congestion import CongestionMap, analyze_congestion
from repro.route.report import route_design
from repro.timing.delaycalc import DelayCalculator, PlacementWireModel


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def placed(pair):
    lib12, _ = pair
    designs = {}
    for name in ("aes", "ldpc"):
        nl = generate_netlist(name, lib12, scale=0.3, seed=11)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.75)
        global_place(nl, fp)
        designs[name] = (nl, fp)
    return designs


class TestCongestion:
    def test_map_shape_and_positive_capacity(self, pair, placed):
        lib12, _ = pair
        nl, fp = placed["aes"]
        cmap = analyze_congestion(nl, lib12, fp.width_um, fp.height_um, 1)
        assert cmap.demand.shape == (cmap.bins, cmap.bins)
        assert cmap.capacity_um > 0
        assert cmap.peak_demand >= 0

    def test_two_tiers_double_capacity(self, pair, placed):
        lib12, _ = pair
        nl, fp = placed["aes"]
        one = analyze_congestion(nl, lib12, fp.width_um, fp.height_um, 1)
        two = analyze_congestion(nl, lib12, fp.width_um, fp.height_um, 2)
        assert two.capacity_um == pytest.approx(2 * one.capacity_um)
        assert two.peak_demand == pytest.approx(one.peak_demand / 2)

    def test_ldpc_more_congested_than_aes(self, pair, placed):
        """The wire-dominant design must stress routing hardest."""
        lib12, _ = pair
        peaks = {}
        for name, (nl, fp) in placed.items():
            cmap = analyze_congestion(nl, lib12, fp.width_um, fp.height_um, 1)
            peaks[name] = cmap.peak_demand
        assert peaks["ldpc"] > peaks["aes"]

    def test_driverless_port_net_demands_at_pad(self, pair):
        """A primary-input net must anchor its L-route at the pad-ring
        coordinate, not at its first sink: demand has to reach the die
        edge where the pad sits."""
        from repro.liberty.cells import CellFunction
        from repro.netlist.core import Netlist, PortDirection
        from repro.place.floorplan import port_ring

        lib12, _ = pair
        w = h = 64.0
        nl = Netlist("pads")
        nl.add_port("din", PortDirection.INPUT)
        for i in range(2):  # two sinks so the net is non-degenerate
            inst = nl.add_instance(f"g{i}", lib12.get(CellFunction.INV, 1))
            nl.connect("din", f"g{i}", "A")
            inst.x_um = 31.0 + i
            inst.y_um = 31.0
        cmap = analyze_congestion(nl, lib12, w, h, 1, bins=8)
        px, py = port_ring(nl, w, h)["din"]
        pad_bin = cmap.demand[
            min(int(py / (h / 8)), 7), min(int(px / (w / 8)), 7)
        ]
        assert pad_bin > 0.0
        # the span from pad to sinks is covered, not just the sink bin
        assert (cmap.demand > 0).sum() > 1

    def test_detour_factor_ramp(self):
        import numpy as np

        low = CongestionMap(2, np.full((2, 2), 10.0), capacity_um=100.0)
        high = CongestionMap(2, np.full((2, 2), 120.0), capacity_um=100.0)
        assert low.detour_factor() == pytest.approx(1.0)
        assert high.detour_factor() > 1.05
        assert high.overflow_fraction == 1.0
        assert low.overflow_fraction == 0.0


class TestRouteDesign:
    def test_report_fields(self, pair, placed):
        lib12, lib9 = pair
        nl, fp = placed["aes"]
        calc = DelayCalculator(
            nl, PlacementWireModel(lib12), {lib12.name: lib12, lib9.name: lib9}
        )
        report = route_design(nl, calc, lib12, fp.width_um, fp.height_um, 1)
        assert report.routed_wl_um >= report.steiner_wl_um
        assert report.routed_wl_mm == pytest.approx(report.routed_wl_um / 1000)
        assert report.miv_count == 0
        assert report.cut_nets == 0

    def test_3d_partition_reports_mivs(self, pair, placed):
        lib12, lib9 = pair
        nl, fp = placed["aes"]
        names = sorted(nl.instances)
        for name in names[::2]:
            nl.instances[name].tier = 1
        calc = DelayCalculator(
            nl, PlacementWireModel(lib12), {lib12.name: lib12, lib9.name: lib9}
        )
        report = route_design(nl, calc, lib12, fp.width_um, fp.height_um, 2)
        assert report.miv_count > 0
        assert report.cut_nets > 0
        assert report.miv_count >= report.cut_nets
        # restore
        for name in names[::2]:
            nl.instances[name].tier = 0
