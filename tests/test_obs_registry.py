"""The typed metrics registry: families, snapshots, merge, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
    validate_prometheus,
)


class TestFamilies:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth", "depth")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5.0

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_jobs_total", "jobs", labels=("state",))
        fam.labels(state="done").inc(2)
        fam.labels(state="failed").inc()
        assert fam.labels(state="done").value == 2
        assert fam.labels(state="failed").value == 1
        # unlabeled access on a labeled family is a usage error
        with pytest.raises(ValueError):
            fam.inc()
        with pytest.raises(ValueError):
            fam.labels(nope="x")

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # lands in +Inf
        sample = reg.snapshot()["families"][0]["samples"][0]
        assert sample["counts"] == [1, 1, 1]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "x")
        assert reg.counter("repro_x_total") is a
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", labels=("other",))
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("repro_ok_total", labels=("bad-label",))

    def test_default_buckets_cover_fsync_to_matrix(self):
        assert LATENCY_BUCKETS_S[0] <= 0.001
        assert LATENCY_BUCKETS_S[-1] >= 600
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)


class TestSnapshotMerge:
    def _registry_with_data(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "j", labels=("state",)).labels(
            state="done"
        ).inc(3)
        reg.gauge("repro_queue_depth", "q").set(4)
        reg.histogram("repro_wait_seconds", "w", buckets=(1.0,)).observe(0.5)
        return reg

    def test_merge_adds_counters_and_histograms(self):
        reg = self._registry_with_data()
        snap = reg.snapshot()
        other = MetricsRegistry()
        other.merge(snap)
        other.merge(snap)
        fam = other.counter("repro_jobs_total", labels=("state",))
        assert fam.labels(state="done").value == 6
        hist_sample = [
            f for f in other.snapshot()["families"]
            if f["name"] == "repro_wait_seconds"
        ][0]["samples"][0]
        assert hist_sample["count"] == 2
        assert hist_sample["counts"] == [2, 0]

    def test_merge_overwrites_gauges(self):
        reg = self._registry_with_data()
        other = MetricsRegistry()
        other.gauge("repro_queue_depth", "q").set(99)
        other.merge(reg.snapshot())
        assert other.gauge("repro_queue_depth").value == 4

    def test_snapshot_is_json_safe_and_stable(self):
        import json

        reg = self._registry_with_data()
        first = json.dumps(reg.snapshot(), sort_keys=True)
        second = json.dumps(reg.snapshot(), sort_keys=True)
        assert first == second

    def test_concurrent_mutation_is_consistent(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_hits_total", "h", labels=("who",))

        def hammer(who: str):
            child = fam.labels(who=who)
            for _ in range(500):
                child.inc()

        threads = [
            threading.Thread(target=hammer, args=(f"t{i % 3}",))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(
            s["value"]
            for s in reg.snapshot()["families"][0]["samples"]
        )
        assert total == 3000


class TestExposition:
    def test_round_trip_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "jobs done", labels=("state",)).labels(
            state="done"
        ).inc(2)
        reg.gauge("repro_queue_depth", "depth").set(1)
        h = reg.histogram("repro_wait_seconds", "wait")
        h.observe(0.002)
        h.observe(700.0)
        text = reg.to_prometheus()
        assert validate_prometheus(text) == []
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{state="done"} 2' in text
        assert 'le="+Inf"' in text
        assert text.endswith("\n")

    def test_render_matches_on_client_side(self):
        """A scraped snapshot renders identically to the daemon's own."""
        reg = MetricsRegistry()
        reg.histogram("repro_x_seconds", "x", buckets=(0.5,)).observe(0.1)
        assert render_prometheus(reg.snapshot()) == reg.to_prometheus()

    def test_label_escaping(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_err_total", "e", labels=("msg",))
        fam.labels(msg='quote " backslash \\ newline \n').inc()
        text = reg.to_prometheus()
        assert validate_prometheus(text) == []
        assert r"\"" in text and r"\\" in text and r"\n" in text

    def test_validator_rejects_broken_exposition(self):
        assert validate_prometheus("repro_x_total 1") != []  # no newline
        assert any(
            "no TYPE" in p
            for p in validate_prometheus("repro_x_total 1\n")
        )
        bad_bucket = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        assert any(
            "not cumulative" in p for p in validate_prometheus(bad_bucket)
        )
        no_inf = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 1\nrepro_h_count 1\n"
        )
        assert any(
            "+Inf" in p for p in validate_prometheus(no_inf)
        )
        assert any(
            "non-numeric" in p
            for p in validate_prometheus("# TYPE repro_g gauge\nrepro_g x\n")
        )

    def test_validator_checks_inf_bucket_against_count(self):
        mismatched = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        assert any(
            "_count" in p for p in validate_prometheus(mismatched)
        )


class TestGlobalRegistry:
    def test_reset_replaces_singleton(self):
        first = get_registry()
        first.counter("repro_tmp_total").inc()
        fresh = reset_registry()
        assert fresh is get_registry()
        assert fresh is not first
        assert fresh.snapshot() == {"families": []}
