"""Job queue: priority order, single-flight dedup, backpressure, restore."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.queue import DONE, FAILED, PENDING, RUNNING, JobQueue, QueueFull


def _submit(queue, nonce, priority=0):
    spec = {"kind": "probe", "nonce": nonce}
    job = queue.make_job("probe", spec, f"key-{nonce}", priority)
    return queue.add(job)


def test_fifo_within_priority():
    queue = JobQueue()
    a = _submit(queue, "a")
    b = _submit(queue, "b")
    assert queue.next_pending() is a
    queue.mark_claimed(a.job_id, "w0")
    assert queue.next_pending() is b


def test_lower_priority_value_runs_first():
    queue = JobQueue()
    _submit(queue, "bulk", priority=5)
    urgent = _submit(queue, "urgent", priority=-1)
    assert queue.next_pending() is urgent


def test_single_flight_dedup_and_release_on_failure():
    queue = JobQueue()
    job = _submit(queue, "x")
    assert queue.lookup_key(job.key) is job
    queue.mark_claimed(job.job_id, "w0")
    assert queue.lookup_key(job.key) is job  # running still dedups
    queue.mark_done(job.job_id, {"echo": 1})
    assert queue.lookup_key(job.key) is job  # done still dedups

    other = _submit(queue, "y")
    queue.mark_claimed(other.job_id, "w0")
    queue.mark_failed(other.job_id, {"error_type": "X", "message": "boom"})
    # Failure releases the key: the spec may be resubmitted fresh.
    assert queue.lookup_key(other.key) is None
    retry = queue.add(
        queue.make_job("probe", dict(other.spec), other.key, 0)
    )
    assert retry.job_id != other.job_id
    assert queue.lookup_key(other.key) is retry


def test_backpressure_high_water_mark():
    queue = JobQueue(max_pending=2)
    _submit(queue, "a")
    _submit(queue, "b")
    with pytest.raises(QueueFull):
        queue.make_job("probe", {"kind": "probe"}, "key-c", 0)
    # Claiming one frees a slot.
    queue.mark_claimed(queue.next_pending().job_id, "w0")
    _submit(queue, "c")


def test_claim_requires_pending():
    queue = JobQueue()
    job = _submit(queue, "a")
    queue.mark_claimed(job.job_id, "w0")
    with pytest.raises(ServeError):
        queue.mark_claimed(job.job_id, "w1")


def test_requeue_returns_job_to_heap():
    queue = JobQueue()
    job = _submit(queue, "a")
    queue.mark_claimed(job.job_id, "w0")
    assert queue.next_pending() is None
    queue.mark_requeued(job.job_id)
    assert job.state == PENDING
    assert queue.next_pending() is job
    assert job.attempts == 1  # attempts survive the requeue


def test_position_counts_earlier_pending():
    queue = JobQueue()
    _submit(queue, "a")
    b = _submit(queue, "b")
    late_urgent = _submit(queue, "c", priority=-1)
    assert queue.position(late_urgent.job_id) == 0
    assert queue.position(b.job_id) == 2
    assert queue.position("missing") is None


def test_restore_requeues_claimed_and_keeps_terminal():
    records = [
        {"type": "submit", "job_id": "j0", "job_seq": 0, "key": "k0",
         "kind": "probe", "spec": {"kind": "probe"}, "priority": 0,
         "submitted_s": 1.0},
        {"type": "submit", "job_id": "j1", "job_seq": 1, "key": "k1",
         "kind": "probe", "spec": {"kind": "probe"}, "priority": 0,
         "submitted_s": 2.0},
        {"type": "submit", "job_id": "j2", "job_seq": 2, "key": "k2",
         "kind": "probe", "spec": {"kind": "probe"}, "priority": 0,
         "submitted_s": 3.0},
        {"type": "claim", "job_id": "j0", "worker": "w0", "attempt": 1},
        {"type": "claim", "job_id": "j1", "worker": "w1", "attempt": 1},
        {"type": "complete", "job_id": "j1", "result": {"echo": 1}},
        # A claim arriving after the terminal record must not reopen it.
        {"type": "claim", "job_id": "j1", "worker": "w1", "attempt": 2},
        {"type": "unknown_future_type", "job_id": "j2"},
    ]
    queue = JobQueue()
    recovered = queue.restore(records)
    assert recovered == ["j0"]  # claimed but unfinished -> requeued
    assert queue.jobs["j0"].state == PENDING
    assert queue.jobs["j0"].attempts == 1
    assert queue.jobs["j1"].state == DONE
    assert queue.jobs["j1"].result == {"echo": 1}
    assert queue.jobs["j2"].state == PENDING
    # Dedup index restored too: done and pending jobs still hold keys.
    assert queue.lookup_key("k1").job_id == "j1"
    # Dispatch order resumes from submission order.
    assert queue.next_pending().job_id == "j0"
    # New ids never collide with restored ones.
    fresh = queue.make_job("probe", {"kind": "probe"}, "k3", 0)
    assert fresh.seq == 3


def test_restore_then_live_records_round_trips():
    queue = JobQueue()
    a = _submit(queue, "a")
    b = _submit(queue, "b")
    c = _submit(queue, "c")
    queue.mark_claimed(a.job_id, "w0")
    queue.mark_done(a.job_id, {"echo": "a"})
    queue.mark_claimed(b.job_id, "w0")
    queue.mark_failed(b.job_id, {"error_type": "X", "message": "m"})

    rebuilt = JobQueue()
    rebuilt.restore(queue.live_records())
    assert {j.job_id: j.state for j in rebuilt.jobs.values()} == {
        a.job_id: DONE, b.job_id: FAILED, c.job_id: PENDING,
    }
    assert rebuilt.jobs[a.job_id].result == {"echo": "a"}
    assert rebuilt.next_pending().job_id == c.job_id
