"""Tests for DEF and Liberty export (repro.io)."""

import pytest

from repro.errors import NetlistError
from repro.flow import run_flow_2d, run_flow_hetero_3d
from repro.io.def_writer import read_def, write_def
from repro.io.liberty_writer import write_liberty
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def libs(pair):
    return {lib.name: lib for lib in pair}


@pytest.fixture(scope="module")
def hetero(pair):
    lib12, lib9 = pair
    design, _ = run_flow_hetero_3d(
        "aes", lib12, lib9, period_ns=0.8, scale=0.25, seed=6
    )
    return design


class TestDef:
    def test_structure(self, hetero):
        text = write_def(hetero)
        assert "VERSION 5.8 ;" in text
        assert "DESIGN aes ;" in text
        assert "DIEAREA" in text
        assert "END COMPONENTS" in text
        assert "END NETS" in text
        # the 3-D extension appears on every component
        assert "+ TIER 1" in text
        assert "+ TIER 0" in text
        # both tiers' row definitions are present
        assert "# TIER 0 LIB 28nm_12T" in text
        assert "# TIER 1 LIB 28nm_9T" in text

    def test_round_trip(self, hetero, libs):
        back = read_def(write_def(hetero), libs)
        nl = hetero.netlist
        assert sorted(back.instances) == sorted(nl.instances)
        for name, inst in nl.instances.items():
            twin = back.instances[name]
            assert twin.cell.name == inst.cell.name
            assert twin.tier == inst.tier
            assert twin.x_um == pytest.approx(inst.x_um, abs=1e-3)
            assert twin.y_um == pytest.approx(inst.y_um, abs=1e-3)
            assert twin.fixed == inst.fixed
        for name, net in nl.nets.items():
            twin = back.nets[name]
            assert twin.driver == net.driver
            assert sorted(twin.sinks) == sorted(net.sinks)

    def test_round_trip_validates(self, hetero, libs):
        read_def(write_def(hetero), libs).validate()

    def test_unfloorplanned_rejected(self, pair):
        from repro.flow.design import Design
        from repro.netlist.generators import generate_netlist

        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=6)
        with pytest.raises(NetlistError):
            write_def(Design("aes", "2D", nl, {0: lib12}))

    def test_unknown_cell_rejected(self, hetero, libs):
        text = write_def(hetero).replace("INVX1_12T", "MYSTERY_CELL")
        with pytest.raises(NetlistError):
            read_def(text, libs)


class TestLiberty:
    def test_structure(self, pair):
        lib12, _ = pair
        text = write_liberty(lib12)
        assert text.startswith("library (28nm_12T) {")
        assert "delay_model : table_lookup;" in text
        assert "nom_voltage : 0.9;" in text
        # every cell appears
        for cell in lib12.cells:
            assert f"cell ({cell.name})" in text

    def test_sequential_cells_marked(self, pair):
        lib12, _ = pair
        text = write_liberty(lib12)
        assert "ff (IQ) { clocked_on : CK; next_state : D; }" in text
        assert "clock : true;" in text

    def test_tables_dumped_with_axes(self, pair):
        _, lib9 = pair
        text = write_liberty(lib9)
        assert "index_1" in text and "index_2" in text
        assert "values ( \\" in text
        inv = lib9.get(CellFunction.INV, 1)
        mid = inv.worst_arc_to_output().delay.values[0][0]
        assert f"{mid:.6f}" in text

    def test_both_libraries_differ(self, pair):
        lib12, lib9 = pair
        assert write_liberty(lib12) != write_liberty(lib9)
