"""Tests for the experiments package (configs, tables, figures, runner)."""

import pytest

from repro.experiments.configs import CONFIG_NAMES, configurations
from repro.experiments.figures import (
    density_heatmap,
    fig1_configurations,
    fig2_boundary_circuits,
    layout_stats,
)
from repro.experiments.runner import (
    EvaluationMatrix,
    run_configuration,
)
from repro.experiments.tables import (
    PAPER_TABLE1,
    format_table,
    table1_qualitative_ranks,
    table2_output_boundary,
    table3_input_boundary,
    table4_cost_model,
)
from repro.flow.report import FlowResult
from repro.power.analysis import PowerReport


class TestConfigurations:
    def test_all_five_present(self):
        configs = configurations()
        assert set(configs) == set(CONFIG_NAMES)

    def test_tier_counts(self):
        configs = configurations()
        assert configs["2D_9T"].tiers == 1
        assert configs["3D_HET"].tiers == 2
        assert configs["3D_HET"].tracks == "9+12"

    def test_config_runs_a_flow(self):
        configs = configurations()
        design, result = configs["2D_12T"].run(
            "aes", period_ns=0.9, scale=0.2, seed=3
        )
        assert result.config == "2D_12T"
        assert design.netlist.tiers_used() == (0,)


class TestCheapTables:
    def test_table1_covers_all_metrics_and_configs(self):
        ranks = table1_qualitative_ranks()
        assert set(ranks) == set(PAPER_TABLE1)
        for metric in ranks:
            assert set(ranks[metric]) == set(CONFIG_NAMES)
            assert all(1 <= v <= 5 for v in ranks[metric].values())

    def test_table2_and_3_have_four_cases(self):
        assert len(table2_output_boundary()) == 4
        assert len(table3_input_boundary()) == 4

    def test_table3_homogeneous_cases_match_table2(self):
        t2 = {r.label: r for r in table2_output_boundary()}
        t3 = {r.label: r for r in table3_input_boundary()}
        assert t3["fast Case-I"].rise_delay_ps == t2["Case-I"].rise_delay_ps
        assert t3["slow Case-I"].total_power_uw == t2["Case-III"].total_power_uw

    def test_table4_constants(self):
        values = table4_cost_model()
        assert values["wafer_cost_2d"] == pytest.approx(0.96)
        assert values["wafer_cost_3d"] == pytest.approx(1.97)

    def test_format_table_renders(self):
        text = format_table({"a": {"x": 1.0}, "b": {"x": 2.0}}, "T")
        assert "T" in text and "a" in text and "2.0000" in text


class TestFigures:
    def test_fig1_lists_five(self):
        configs = fig1_configurations()
        assert len(configs) == 5

    def test_fig2_descriptions(self):
        circuits = fig2_boundary_circuits()
        assert set(circuits) == {"a", "b"}

    def test_layout_stats_and_heatmap(self):
        configs = configurations()
        design, _result = configs["2D_12T"].run(
            "aes", period_ns=0.9, scale=0.2, seed=3
        )
        stats = layout_stats(design)
        assert stats.tiers == 1
        assert 0.2 < stats.density < 0.95
        assert "um" in stats.describe()
        art = density_heatmap(design, bins=8)
        assert len(art.splitlines()) == 8


class TestRunner:
    def test_run_configuration_caches(self):
        d1, r1 = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=3
        )
        d2, r2 = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=3
        )
        assert r1 is r2  # second call hits the in-process cache

    def test_matrix_accessors(self):
        # a hand-built matrix exercises the delta helper cheaply
        def fake(ppc):
            return FlowResult(
                design="aes", config="x", frequency_ghz=1.0, period_ns=1.0,
                wns_ns=0.0, tns_ns=0.0, effective_delay_ns=1.0,
                si_area_mm2=1.0, footprint_mm2=1.0, chip_width_um=10.0,
                density=0.8, wirelength_mm=1.0, miv_count=0, cut_nets=0,
                total_power_mw=1.0,
                power=PowerReport(1.0, 0.0, 0.0, 0.0),
                pdp_pj=1.0, die_cost_1e6=1.0, cost_per_cm2=1.0, ppc=ppc,
                clock=None, critical_path=None, memory_nets=None,
                peak_congestion=0.5,
            )

        matrix = EvaluationMatrix(scale=0.5, seed=0)
        matrix.results[("aes", "3D_HET")] = fake(12.0)
        matrix.results[("aes", "2D_12T")] = fake(10.0)
        assert matrix.hetero("aes").ppc == 12.0
        assert matrix.delta_pct("aes", "2D_12T", "ppc") == pytest.approx(20.0)
