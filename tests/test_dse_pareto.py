"""Property suites for the DSE dominance kernel and boundary search.

Three invariants carry the explorer's correctness claims:

- the vectorized mask and the incremental front agree with the
  pure-python brute-force reference on arbitrary point sets;
- a certified skip can never remove a Pareto-optimal point (pruning
  soundness);
- :func:`grid_boundary_search` returns the same index for every hint,
  including no hint, whenever the pass predicate is monotone (warm
  starts change cost, never answers).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.dse.pareto import (
    Objective,
    ParetoFront,
    brute_force_front,
    pareto_mask,
    parse_objectives,
)
from repro.experiments.dse.search import grid_boundary_search

coords = st.floats(
    min_value=-100.0, max_value=100.0,
    allow_nan=False, allow_infinity=False,
)


def point_sets(max_dim=4, max_points=40):
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda k: st.lists(
            st.tuples(*([coords] * k)), min_size=0, max_size=max_points
        )
    )


# ----------------------------------------------------------------------
# kernel == brute force
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(point_sets())
def test_pareto_mask_matches_brute_force(points):
    if not points:
        assert len(pareto_mask(np.empty((0, 2)))) == 0
        return
    reference = set(brute_force_front(points))
    mask = pareto_mask(np.array(points))
    assert {i for i, keep in enumerate(mask) if keep} == reference


@settings(max_examples=200, deadline=None)
@given(point_sets())
def test_incremental_front_matches_brute_force(points):
    """Whatever the insertion order, the surviving ids are exactly the
    non-dominated indices (duplicates of a front point all survive)."""
    if not points:
        return
    k = len(points[0])
    front = ParetoFront(k)
    for i, p in enumerate(points):
        front.add(str(i), p)
    assert set(front.ids) == {str(i) for i in brute_force_front(points)}


@settings(max_examples=100, deadline=None)
@given(point_sets(), st.randoms(use_true_random=False))
def test_incremental_front_is_order_independent(points, rng):
    if not points:
        return
    k = len(points[0])
    a = ParetoFront(k)
    for i, p in enumerate(points):
        a.add(str(i), p)
    order = list(range(len(points)))
    rng.shuffle(order)
    b = ParetoFront(k)
    for i in order:
        b.add(str(i), points[i])
    assert set(a.ids) == set(b.ids)


# ----------------------------------------------------------------------
# pruning soundness
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(point_sets(max_dim=3, max_points=25), st.data())
def test_certified_skip_never_drops_a_front_member(points, data):
    """If ``certifies_skip(lb)`` fires, then *no* vector >= lb can be
    Pareto-optimal against the evaluated set: adding any such vector to
    the full point set must leave it dominated."""
    if not points:
        return
    k = len(points[0])
    front = ParetoFront(k)
    for i, p in enumerate(points):
        front.add(str(i), p)
    lb = data.draw(st.tuples(*([coords] * k)), label="lower_bound")
    certificate = front.certifies_skip(lb)
    if certificate is None:
        return
    # Any candidate at or above the bound (we try the bound itself and
    # a few dominated offsets) must be dominated in the combined set.
    offsets = data.draw(
        st.lists(
            st.tuples(*([st.floats(min_value=0.0, max_value=10.0,
                                   allow_nan=False)] * k)),
            min_size=1, max_size=4,
        ),
        label="offsets",
    )
    for off in [(0.0,) * k] + offsets:
        candidate = tuple(b + o for b, o in zip(lb, off))
        combined = points + [candidate]
        assert len(combined) - 1 not in brute_force_front(combined), (
            f"certified skip dropped Pareto-optimal {candidate}"
            f" (certificate {certificate})"
        )


# ----------------------------------------------------------------------
# boundary search: warm == cold == ground truth
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=-5, max_value=45),
)
def test_grid_boundary_search_warm_equals_cold(n, boundary, hint):
    """Monotone predicate: fails below ``boundary``, passes at and
    above it.  Ground truth is the first passing index, or ``n - 1``
    when nothing passes."""
    def passes(i):
        assert 0 <= i < n, f"probe {i} out of range"
        return i >= boundary

    truth = boundary if boundary < n else n - 1
    cold_index, cold_probes = grid_boundary_search(n, passes)
    assert cold_index == truth
    warm_index, warm_probes = grid_boundary_search(n, passes, hint=hint)
    assert warm_index == truth
    assert warm_probes <= n
    assert cold_probes <= n


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=2, max_value=60))
def test_grid_boundary_search_exact_hint_costs_two_probes(n):
    """The advertised win: a hint equal to the answer costs <= 2 probes
    (pass at the hint, fail just below it)."""
    for boundary in {1, n // 2, n - 1}:
        _, probes = grid_boundary_search(
            n, lambda i: i >= boundary, hint=boundary
        )
        assert probes <= 2


def test_grid_boundary_search_rejects_empty_grid():
    with pytest.raises(ValueError):
        grid_boundary_search(0, lambda i: True)


def test_grid_boundary_search_all_fail_returns_last_index():
    index, _ = grid_boundary_search(9, lambda i: False)
    assert index == 8


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------
def test_parse_objectives_round_trip():
    objectives = parse_objectives("pdp_pj:min, ppc:max")
    assert [o.label for o in objectives] == ["pdp_pj:min", "ppc:max"]
    assert objectives[0].to_min(2.0) == 2.0
    assert objectives[1].to_min(2.0) == -2.0


def test_parse_objectives_rejects_garbage():
    with pytest.raises(ValueError):
        parse_objectives("pdp_pj")
    with pytest.raises(ValueError):
        parse_objectives("")
    with pytest.raises(ValueError):
        Objective("x", "upward")
