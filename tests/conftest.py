"""Unit-test harness configuration.

The matrix engine persists results to ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).  To keep unit tests hermetic, the suite points the
cache at a session-scoped temporary directory -- unless the caller
already set ``REPRO_CACHE_DIR`` explicitly (CI does this to exercise
cold-then-warm runs across pytest invocations).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    path = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
