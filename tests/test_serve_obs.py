"""Serving observability: event bus, job traces, metrics, top model.

Everything here runs in-process (no daemon subprocess): the bus and
subscriber backpressure contract, the windowed daemon-side telemetry
(the fix for the old grow-forever merge), incremental trace stitching,
the metrics view's Prometheus round-trip, and the order-insensitivity
of the ``repro top`` event fold (hypothesis-checked).
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.registry import validate_prometheus
from repro.obs.trace import Span
from repro.serve.daemon import ServeConfig, ServerCore
from repro.serve.events import EventBus, JobTrace, Subscriber
from repro.serve.topview import TopModel


def _core(tmp_path, **overrides) -> ServerCore:
    overrides.setdefault("state_dir", tmp_path / "serve")
    return ServerCore(ServeConfig.from_env(**overrides))


def _probe(nonce, **extra):
    return {"kind": "probe", "nonce": nonce, **extra}


# ----------------------------------------------------------------------
# EventBus / Subscriber
# ----------------------------------------------------------------------
class TestEventBus:
    def test_publish_stamps_seq_and_ts(self):
        bus = EventBus()
        first = bus.publish("job_state", job_id="j1", state="pending")
        second = bus.publish("lifecycle", action="worker_boot")
        assert first["event"] == "job_state" and first["job_id"] == "j1"
        assert second["seq"] == first["seq"] + 1
        assert first["ts"] > 0

    def test_kind_field_passes_through(self):
        # Job specs carry a `kind` field; the bus parameter must not
        # collide with it.
        bus = EventBus()
        event = bus.publish("job_state", job_id="j1", kind="matrix")
        assert event["kind"] == "matrix"

    def test_backlog_replay_for_late_subscriber(self):
        bus = EventBus(backlog=8)
        for i in range(5):
            bus.publish("job_state", job_id=f"j{i}", state="pending")
        sub = bus.subscribe()
        replayed = list(sub.drain())
        assert [e["job_id"] for e in replayed] == [f"j{i}" for i in range(5)]
        no_replay = bus.subscribe(backlog=False)
        assert list(no_replay.drain()) == []

    def test_job_filter_admits_daemon_wide_events(self):
        bus = EventBus()
        sub = bus.subscribe(job_id="j1", backlog=False)
        bus.publish("job_state", job_id="j1", state="running")
        bus.publish("job_state", job_id="j2", state="running")
        bus.publish("lifecycle", action="drain_begin")
        events = list(sub.drain())
        assert [e["event"] for e in events] == ["job_state", "lifecycle"]
        assert events[0]["job_id"] == "j1"

    def test_slow_subscriber_drops_and_counts(self):
        bus = EventBus(queue_max=4)
        slow = bus.subscribe(backlog=False)
        for i in range(20):
            bus.publish("job_state", job_id=f"j{i}", state="pending")
        assert slow.dropped == 16
        assert bus.dropped_total() == 16
        # the gap is surfaced before any post-gap event
        first = slow.get(timeout_s=0)
        assert first == {"event": "feed_gap", "dropped": 16}
        assert slow.get(timeout_s=0)["job_id"] == "j0"

    def test_publish_never_blocks_on_slow_subscriber(self):
        bus = EventBus(queue_max=2)
        bus.subscribe(backlog=False)  # never read: permanently full
        fast = bus.subscribe(backlog=False)
        received: list[dict] = []
        done = threading.Event()

        def reader():
            while True:
                event = fast.get(timeout_s=2.0)
                if event is None:
                    break
                if event["event"] == "feed_gap":
                    continue
                received.append(event)
                if len(received) == 500:
                    break
            done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        start = time.monotonic()
        for i in range(500):
            bus.publish("job_state", job_id=f"j{i}", state="pending")
        publish_s = time.monotonic() - start
        assert done.wait(5.0)
        thread.join(5.0)
        # publishing 500 events past a wedged subscriber stays fast
        assert publish_s < 2.0
        # fast subscriber may drop under its own bound but never stalls
        assert len(received) + fast.dropped >= 500 - 2

    def test_close_wakes_blocked_reader(self):
        bus = EventBus()
        sub = bus.subscribe()
        got: list = []

        def reader():
            got.append(sub.get(timeout_s=10.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        bus.close()
        thread.join(2.0)
        assert not thread.is_alive()
        assert got == [None]
        # a closed bus swallows publishes instead of erroring
        bus.publish("job_state", job_id="x", state="pending")

    def test_multi_client_fanout_under_load(self):
        bus = EventBus(queue_max=4096)
        subs = [bus.subscribe(backlog=False) for _ in range(4)]
        results: dict[int, list] = {i: [] for i in range(len(subs))}

        def reader(i: int, sub: Subscriber):
            while True:
                event = sub.get(timeout_s=2.0)
                if event is None or event.get("job_id") == "end":
                    break
                results[i].append(event["seq"])

        threads = [
            threading.Thread(target=reader, args=(i, sub))
            for i, sub in enumerate(subs)
        ]
        for t in threads:
            t.start()
        for i in range(300):
            bus.publish("job_state", job_id=f"j{i}", state="pending")
        bus.publish("job_state", job_id="end")
        for t in threads:
            t.join(5.0)
        for i in range(len(subs)):
            assert results[i] == sorted(results[i])
            assert len(results[i]) == 300


# ----------------------------------------------------------------------
# JobTrace stitching
# ----------------------------------------------------------------------
def _stage(name: str, start: float, dur: float) -> dict:
    sp = Span(name, {"design": "aes"})
    sp.start_wall_s = 100.0 + start
    sp._start_perf = start
    sp.duration_s = dur
    return sp.to_dict()


class TestJobTrace:
    def test_midrun_roots_synthesize_open_parent(self):
        trace = JobTrace("j1", "flow")
        trace.note_root(
            {"name": "flow", "attrs": {"design": "aes"},
             "start_wall_s": 100.0, "start_perf_s": 0.0}
        )
        trace.add_stage(_stage("synthesis", 0.0, 1.0))
        trace.add_stage(_stage("placement", 1.0, 2.0))
        roots = trace.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "flow" and root["status"] == "open"
        assert [c["name"] for c in root["children"]] == [
            "synthesis", "placement",
        ]
        assert root["duration_s"] == pytest.approx(3.0)
        assert trace.stage_count() == 2

    def test_midrun_tree_is_a_valid_chrome_trace(self):
        trace = JobTrace("j1", "flow")
        trace.add_stage(_stage("synthesis", 0.0, 1.0))
        spans = [Span.from_dict(d) for d in trace.roots()]
        assert validate_chrome_trace(to_chrome_trace(spans)) == []

    def test_final_snapshot_wins(self):
        trace = JobTrace("j1", "flow")
        trace.add_stage(_stage("synthesis", 0.0, 1.0))
        final_root = Span("flow", {"design": "aes"})
        final_root.duration_s = 9.0
        final_root.status = "ok"
        trace.set_final([final_root.to_dict()])
        roots = trace.roots()
        assert roots[0]["duration_s"] == 9.0
        assert roots[0]["status"] != "open"

    def test_unnamed_job_gets_kind_placeholder(self):
        trace = JobTrace("j9", "matrix")
        trace.add_stage(_stage("flow", 0.5, 1.0))
        root = trace.roots()[0]
        assert root["name"] == "job:matrix"
        assert root["attrs"]["job_id"] == "j9"
        assert root["start_wall_s"] == pytest.approx(100.5)


# ----------------------------------------------------------------------
# ServerCore observability
# ----------------------------------------------------------------------
class TestCoreObservability:
    def test_submit_claim_finish_publishes_job_states(self, tmp_path):
        core = _core(tmp_path)
        sub = core.bus.subscribe()
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.finish_job(job_id, {"echo": 1})
        states = [
            e["state"] for e in sub.drain() if e["event"] == "job_state"
        ]
        assert states == ["pending", "running", "done"]
        core.close()

    def test_metrics_view_round_trips_prometheus(self, tmp_path):
        core = _core(tmp_path)
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.finish_job(job_id, {"echo": 1})
        core.submit(_probe("a"))  # dedup disposition
        view = core.metrics_view()
        assert view["ok"]
        from repro.obs.registry import render_prometheus

        text = render_prometheus(view["metrics"])
        assert validate_prometheus(text) == []
        assert 'repro_submits_total{disposition="accepted"} 1' in text
        assert 'repro_submits_total{disposition="deduped"} 1' in text
        assert 'repro_jobs_total{state="done"} 1' in text
        assert "repro_job_wait_seconds_count 1" in text
        assert "repro_job_run_seconds_count 1" in text
        assert "repro_journal_fsync_seconds_count" in text
        assert "repro_queue_depth 0" in text
        core.close()

    def test_note_progress_feeds_trace_and_stage_seconds(self, tmp_path):
        core = _core(tmp_path)
        sub = core.bus.subscribe()
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.note_progress(
            job_id,
            {"phase": "open", "name": "flow", "depth": 0,
             "start_wall_s": 100.0, "start_perf_s": 0.0, "attrs": {}},
            worker="w0",
        )
        core.note_progress(
            job_id,
            {"phase": "close", "name": "synthesis", "depth": 1,
             "duration_s": 1.5, "status": "ok",
             "tree": _stage("synthesis", 0.0, 1.5)},
            worker="w0",
        )
        view = core.trace_view(job_id)
        assert view["ok"] and view["stages"] == 1
        assert view["trace"][0]["name"] == "flow"
        events = [e["event"] for e in sub.drain()]
        assert "span_open" in events and "span_close" in events
        text = core.registry.to_prometheus()
        assert 'repro_stage_seconds_total{stage="synthesis"} 1.5' in text
        core.close()

    def test_trace_view_unknown_job(self, tmp_path):
        core = _core(tmp_path)
        view = core.trace_view("nope")
        assert not view["ok"] and view["code"] == "unknown_job"
        core.close()

    def test_trace_retention_is_bounded(self, tmp_path):
        core = _core(tmp_path, trace_keep=2)
        ids = []
        for i in range(4):
            job_id = core.submit(_probe(str(i)))["job_id"]
            ids.append(job_id)
            core.claim_job("w0")
            core.note_progress(
                job_id,
                {"phase": "close", "name": "probe", "depth": 1,
                 "duration_s": 0.1, "status": "ok",
                 "tree": _stage("probe", 0.0, 0.1)},
            )
            core.finish_job(job_id, {})
        assert len(core._traces) == 2
        assert core.trace_view(ids[0])["stages"] == 0  # evicted
        assert core.trace_view(ids[-1])["stages"] == 1
        core.close()

    def test_lifecycle_counts_restarts(self, tmp_path):
        core = _core(tmp_path)
        sub = core.bus.subscribe()
        core.lifecycle("worker_boot", worker="w0")
        core.lifecycle("worker_restart", worker="w0", reason="crash")
        core.lifecycle("worker_restart", worker="w1", reason="stale")
        events = [e for e in sub.drain() if e["event"] == "lifecycle"]
        assert [e["action"] for e in events] == [
            "worker_boot", "worker_restart", "worker_restart",
        ]
        assert "repro_worker_restarts_total 2" in (
            core.registry.to_prometheus()
        )
        core.close()

    def test_feed_snapshot_filters_by_job(self, tmp_path):
        core = _core(tmp_path)
        a = core.submit(_probe("a"))["job_id"]
        core.submit(_probe("b"))
        snap = core.feed_snapshot()
        assert len(snap["jobs"]) == 2
        only_a = core.feed_snapshot(a)
        assert list(only_a["jobs"]) == [a]
        core.close()


class TestWindowedTelemetry:
    """Regression: daemon-side telemetry no longer grows without bound.

    The old core merged every finished job's telemetry into one
    process-global ``Telemetry`` forever; now snapshots live in a
    timestamped window and ``stats`` reports only what fits in it.
    """

    def test_stats_telemetry_reflects_finished_jobs(self, tmp_path):
        core = _core(tmp_path)
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.finish_job(
            job_id, {}, telemetry={"flows_run": 3}
        )
        telemetry = core.stats_view()["telemetry"]
        assert telemetry["flows_run"] == 3
        core.close()

    def test_old_entries_age_out_of_the_window(self, tmp_path):
        core = _core(tmp_path, telemetry_window_s=0.2)
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.finish_job(
            job_id, {}, telemetry={"flows_run": 1}
        )
        assert core.stats_view()["telemetry"]["flows_run"] == 1
        time.sleep(0.3)
        aged = core.stats_view()["telemetry"]
        assert aged["flows_run"] == 0
        assert len(core._telemetry_window) == 0
        core.close()

    def test_window_is_bounded_not_cumulative(self, tmp_path):
        core = _core(tmp_path, telemetry_window_s=0.15)
        for i in range(3):
            job_id = core.submit(_probe(str(i)))["job_id"]
            core.claim_job("w0")
            core.finish_job(
                job_id, {}, telemetry={"flows_run": 1}
            )
            time.sleep(0.06)
        # at most the window's worth of snapshots is ever merged
        merged = core.stats_view()["telemetry"]["flows_run"]
        assert merged < 3
        core.close()

    def test_global_telemetry_not_polluted(self, tmp_path):
        from repro.experiments.telemetry import get_telemetry

        before = get_telemetry().snapshot()["flows_run"]
        core = _core(tmp_path)
        job_id = core.submit(_probe("a"))["job_id"]
        core.claim_job("w0")
        core.finish_job(
            job_id, {}, telemetry={"flows_run": 5}
        )
        after = get_telemetry().snapshot()["flows_run"]
        assert after == before
        core.close()


# ----------------------------------------------------------------------
# TopModel: the repro top fold
# ----------------------------------------------------------------------
def _feed(job_ids: list[str]) -> list[dict]:
    """A plausible feed: per-job pending->running->stage->terminal."""
    events: list[dict] = []
    seq = 0

    def emit(event_kind: str, **fields):
        nonlocal seq
        seq += 1
        events.append(
            {"event": event_kind, "seq": seq, "ts": float(seq), **fields}
        )

    emit("lifecycle", action="worker_boot", worker="w0")
    for i, job_id in enumerate(job_ids):
        emit("job_state", job_id=job_id, state="pending", kind="flow")
        emit("job_state", job_id=job_id, state="running", kind="flow",
             worker=f"w{i % 2}", attempt=1)
        emit("span_open", job_id=job_id, name="synthesis", depth=1,
             worker=f"w{i % 2}", attrs={})
        emit("span_close", job_id=job_id, name="synthesis", depth=1,
             worker=f"w{i % 2}", duration_s=0.25, status="ok")
        if i % 3 == 2:
            emit("job_state", job_id=job_id, state="failed", kind="flow",
                 error_type="FlowError")
        else:
            emit("job_state", job_id=job_id, state="done", kind="flow")
    emit("metrics", pending=0, running=0, completed=2, failed=1,
         worker_respawns=0, feed_dropped=0)
    return events


class TestTopModel:
    def test_fold_reaches_terminal_state(self):
        model = TopModel()
        model.apply_snapshot({"snapshot": {"jobs": {}, "draining": False}})
        for event in _feed(["j1", "j2", "j3"]):
            model.apply(event)
        assert model.job_state("j1") == "done"
        assert model.job_state("j3") == "failed"
        assert model.counts() == {"done": 2, "failed": 1}
        assert model.jobs["j1"]["stages_done"] == 1
        rendered = model.render()
        assert "done=2" in rendered and "failed=1" in rendered
        assert "!FlowError" in rendered

    def test_snapshot_seeds_but_events_win(self):
        model = TopModel()
        model.apply(
            {"event": "job_state", "seq": 5, "ts": 1.0, "job_id": "j1",
             "state": "done", "kind": "flow"}
        )
        model.apply_snapshot(
            {"snapshot": {"jobs": {
                "j1": {"state": "running", "kind": "flow"},
                "j2": {"state": "pending", "kind": "sweep"},
            }}}
        )
        assert model.job_state("j1") == "done"  # event beat snapshot
        assert model.job_state("j2") == "pending"

    def test_replay_duplicates_are_idempotent(self):
        events = _feed(["j1", "j2"])
        model = TopModel()
        for event in events + events:  # reconnect replays the backlog
            model.apply(event)
        assert model.jobs["j1"]["stages_done"] == 1
        assert model.lifecycle_counts == {"worker_boot": 1}

    def test_feed_gap_accumulates(self):
        model = TopModel()
        model.apply({"event": "feed_gap", "dropped": 3})
        model.apply({"event": "feed_gap", "dropped": 2})
        assert model.dropped == 5
        assert "5 event(s) lost" in model.render()

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_interleaving_converges(self, data):
        """The acceptance property: every interleaving of the feed's
        events folds to the same final dashboard state."""
        n_jobs = data.draw(st.integers(min_value=1, max_value=4))
        events = _feed([f"j{i}" for i in range(n_jobs)])
        shuffled = data.draw(st.permutations(events))
        expected = TopModel()
        for event in events:
            expected.apply(event)
        model = TopModel()
        for event in shuffled:
            model.apply(event)
        assert model.jobs == expected.jobs
        assert model.counts() == expected.counts()
        assert model.lifecycle_counts == expected.lifecycle_counts
        assert model.metrics == expected.metrics
        assert model.render() == expected.render()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliWiring:
    def test_new_commands_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["metrics", "--json"])
        assert args.json and args.func.__name__ == "_cmd_metrics"
        args = parser.parse_args(["top", "--once", "--interval", "0.5"])
        assert args.once and args.interval == 0.5
        args = parser.parse_args(["watch", "j1", "--timeout", "5"])
        assert args.job_id == "j1" and args.timeout == 5.0
        args = parser.parse_args(["result", "j1", "--trace", "out.json"])
        # dest is job_trace so main()'s process-level --trace hook
        # (which records and exports this process's spans) stays off
        assert args.job_trace == "out.json"
        assert getattr(args, "trace", None) is None

    def test_load_traces_aggregates_a_directory(self, tmp_path):
        from repro.obs.export import (
            load_traces,
            profile_summary,
            write_chrome_trace,
            write_jsonl,
        )

        a = Span("flow", {"design": "aes"})
        a.duration_s = 1.0
        b = Span("flow", {"design": "b14"})
        b.duration_s = 2.0
        write_chrome_trace(tmp_path / "job1.json", [a])
        write_jsonl(tmp_path / "job2.jsonl", [b])
        (tmp_path / "journal.wal").write_text("not a trace\n")
        (tmp_path / "result.json").write_text(json.dumps({"ok": True}))
        roots = load_traces(tmp_path)
        assert len(roots) == 2
        assert {r.name for r in roots} == {"flow"}
        table = profile_summary(roots, top=3)
        assert "flow" in table

    def test_load_traces_raises_when_nothing_loads(self, tmp_path):
        from repro.obs.export import load_traces

        empty = tmp_path / "only_garbage"
        empty.mkdir()
        (empty / "bad.json").write_text("{nope")
        with pytest.raises(ValueError):
            load_traces(empty)
