"""Overload resilience: shedding, deadlines, retention, scaling, client.

Covers the admission-control and retention layers added on top of the
crash-safe daemon: priority-aware load shedding at the high-water mark,
per-job deadlines failing as structured ``DeadlineExceeded`` without
claiming workers, LRU+TTL eviction of terminal results (with journal
tombstones that survive restarts -- including a Hypothesis property
over record orderings), online journal compaction that is crash-safe at
either fault phase, the disk-pressure degraded mode, the supervisor's
adaptive pool scaling, and the client-side breaker/backoff/resubmit
discipline.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ServeError
from repro.experiments import faults
from repro.experiments.faults import FaultInjected
from repro.serve.client import ServeClient, request
from repro.serve.daemon import ServeConfig, ServerCore
from repro.serve.journal import Journal, replay_file
from repro.serve.queue import DONE, EVICTED, FAILED, PENDING, JobQueue
from repro.serve.supervisor import Supervisor


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
    faults.reset_fault_state()
    yield
    faults.reset_fault_state()


def _core(tmp_path, **overrides) -> ServerCore:
    overrides.setdefault("state_dir", tmp_path / "serve")
    return ServerCore(ServeConfig.from_env(**overrides))


def _probe(nonce, **extra):
    return {"kind": "probe", "nonce": nonce, **extra}


def _submit(queue, nonce, priority=0, deadline_s=0.0):
    job = queue.make_job(
        "probe", {"kind": "probe", "nonce": nonce}, f"key-{nonce}",
        priority, deadline_s=deadline_s,
    )
    return queue.add(job)


# ----------------------------------------------------------------------
# queue: shedding, deadlines, retention primitives
# ----------------------------------------------------------------------
class TestQueueShedding:
    def test_victim_is_lowest_priority_newest(self):
        queue = JobQueue()
        _submit(queue, "urgent", priority=0)
        old_low = _submit(queue, "low-old", priority=5)
        new_low = _submit(queue, "low-new", priority=5)
        victim = queue.shed_candidate(1)
        assert victim is new_low
        assert victim is not old_low

    def test_equal_priority_never_sheds(self):
        queue = JobQueue()
        _submit(queue, "a", priority=5)
        assert queue.shed_candidate(5) is None
        assert queue.shed_candidate(6) is None
        assert queue.shed_candidate(4) is not None

    def test_running_jobs_are_not_candidates(self):
        queue = JobQueue()
        job = _submit(queue, "busy", priority=9)
        queue.mark_claimed(job.job_id, "w0")
        assert queue.shed_candidate(0) is None


class TestQueueDeadlines:
    def test_expired_pending_filters_and_orders(self):
        queue = JobQueue()
        now = time.time()
        late2 = _submit(queue, "late2", deadline_s=now - 1.0)
        late1 = _submit(queue, "late1", deadline_s=now - 5.0)
        _submit(queue, "fresh", deadline_s=now + 60.0)
        _submit(queue, "forever")  # no deadline
        expired = queue.expired_pending(now)
        assert [j.job_id for j in expired] == [late1.job_id, late2.job_id]

    def test_claimed_jobs_do_not_expire(self):
        queue = JobQueue()
        job = _submit(queue, "running", deadline_s=time.time() - 1.0)
        queue.mark_claimed(job.job_id, "w0")
        assert queue.expired_pending() == []


class TestQueueRetention:
    def _finish(self, queue, nonce, finished_s):
        job = _submit(queue, nonce)
        queue.mark_claimed(job.job_id, "w0")
        queue.mark_done(job.job_id, {"echo": nonce})
        job.finished_s = finished_s
        return job

    def test_lru_bound_names_oldest_finishers(self):
        queue = JobQueue()
        now = time.time()
        jobs = [self._finish(queue, f"j{i}", now + i) for i in range(4)]
        candidates = queue.evict_candidates(retain_jobs=2, retain_s=0, now=now)
        assert [j.job_id for j in candidates] == [
            jobs[0].job_id, jobs[1].job_id
        ]

    def test_ttl_bound_expires_old_results(self):
        queue = JobQueue()
        now = time.time()
        old = self._finish(queue, "old", now - 100.0)
        self._finish(queue, "new", now - 1.0)
        candidates = queue.evict_candidates(
            retain_jobs=0, retain_s=50.0, now=now
        )
        assert [j.job_id for j in candidates] == [old.job_id]

    def test_evict_releases_key_and_leaves_tombstone(self):
        queue = JobQueue()
        job = self._finish(queue, "gone", time.time())
        tombstone = queue.evict(job.job_id, evicted_s=123.0)
        assert job.job_id not in queue.jobs
        assert queue.lookup_key(job.key) is None
        assert queue.evicted[job.job_id]["state"] == DONE
        assert tombstone["evicted_s"] == 123.0
        # The spec may be resubmitted as a brand-new job.
        again = _submit(queue, "gone")
        assert again.job_id != job.job_id

    def test_evict_refuses_live_jobs(self):
        queue = JobQueue()
        job = _submit(queue, "live")
        with pytest.raises(ServeError):
            queue.evict(job.job_id)

    def test_tombstones_are_bounded(self):
        queue = JobQueue(max_tombstones=3)
        jobs = [self._finish(queue, f"j{i}", time.time()) for i in range(5)]
        for job in jobs:
            queue.evict(job.job_id)
        assert len(queue.evicted) == 3
        assert jobs[0].job_id not in queue.evicted
        assert jobs[4].job_id in queue.evicted


# ----------------------------------------------------------------------
# queue restore: retention wins over any record ordering
# ----------------------------------------------------------------------
def _submit_record(i, seq):
    return {
        "type": "submit", "seq": seq, "job_id": f"j{i}", "job_seq": i,
        "key": f"key-{i}", "kind": "probe",
        "spec": {"kind": "probe", "nonce": str(i)},
        "priority": 0, "submitted_s": 1.0 + i,
    }


def _terminal_record(i, seq, done):
    if done:
        return {"type": "complete", "seq": seq, "job_id": f"j{i}",
                "result": {"echo": i}, "finished_s": 100.0 + i}
    return {"type": "fail", "seq": seq, "job_id": f"j{i}",
            "error": {"error_type": "ProbeFail", "message": "x"},
            "finished_s": 100.0 + i}


def _evict_record(i, seq):
    return {"type": "evict", "seq": seq, "job_id": f"j{i}",
            "key": f"key-{i}", "kind": "probe", "state": DONE,
            "finished_s": 100.0 + i, "evicted_s": 200.0 + i}


class TestRestoreRetentionWins:
    def test_evicted_job_stays_tombstoned(self):
        queue = JobQueue()
        queue.restore([
            _submit_record(0, 0),
            _terminal_record(0, 1, done=True),
            _evict_record(0, 2),
        ])
        assert "j0" not in queue.jobs
        assert "j0" in queue.evicted
        assert queue.lookup_key("key-0") is None

    def test_evict_record_before_submit_still_wins(self):
        queue = JobQueue()
        queue.restore([
            _evict_record(0, 2),
            _submit_record(0, 0),
            _terminal_record(0, 1, done=True),
        ])
        assert "j0" not in queue.jobs
        assert "j0" in queue.evicted

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_any_interleaving_preserves_terminal_and_eviction(self, data):
        """Terminal-wins + retention-wins over arbitrary merge orders.

        Per-job chains (submit then terminal) are interleaved in any
        order Hypothesis picks, with evict records dropped in at
        arbitrary positions; however the merge lands, an evicted job is
        a tombstone and a kept job retains its terminal state.
        """
        n_jobs = data.draw(st.integers(min_value=1, max_value=5), label="jobs")
        done_flags = data.draw(
            st.lists(st.booleans(), min_size=n_jobs, max_size=n_jobs),
            label="done",
        )
        evicted_ids = data.draw(
            st.sets(st.integers(min_value=0, max_value=n_jobs - 1)),
            label="evicted",
        )
        chains = [
            [_submit_record(i, 2 * i), _terminal_record(i, 2 * i + 1,
                                                        done_flags[i])]
            for i in range(n_jobs)
        ]
        loose = [_evict_record(i, 100 + i) for i in sorted(evicted_ids)]
        records = []
        while chains or loose:
            pick = data.draw(
                st.integers(min_value=0, max_value=len(chains) + len(loose) - 1),
                label="pick",
            )
            if pick < len(chains):
                records.append(chains[pick].pop(0))
                if not chains[pick]:
                    chains.pop(pick)
            else:
                records.append(loose.pop(pick - len(chains)))

        queue = JobQueue()
        recovered = queue.restore(records)
        assert recovered == []
        for i in range(n_jobs):
            job_id = f"j{i}"
            if i in evicted_ids:
                assert job_id not in queue.jobs
                assert job_id in queue.evicted
                assert queue.lookup_key(f"key-{i}") is None
            else:
                state = queue.jobs[job_id].state
                assert state == (DONE if done_flags[i] else FAILED)
        # The round trip holds: re-serializing and restoring again
        # reproduces the same split of resident vs tombstoned jobs.
        second = JobQueue()
        second.restore(queue.live_records())
        assert set(second.jobs) == set(queue.jobs)
        assert set(second.evicted) == set(queue.evicted)


# ----------------------------------------------------------------------
# core: deadline admission, shedding, retry_after, retention, disk
# ----------------------------------------------------------------------
class TestCoreDeadlines:
    def test_expired_job_fails_structured_without_claiming(self, tmp_path):
        core = _core(tmp_path)
        job_id = core.submit(_probe("late"), deadline=0.01)["job_id"]
        time.sleep(0.05)
        assert core.expire_deadlines() == 1
        view = core.result(job_id)
        assert view["state"] == FAILED
        assert view["error"]["error_type"] == "DeadlineExceeded"
        assert core.stats.expired == 1
        # The failure is journaled: a restarted core agrees.
        core.close()
        reborn = _core(tmp_path)
        assert reborn.result(job_id)["state"] == FAILED
        reborn.close()

    def test_claim_never_hands_out_expired_jobs(self, tmp_path):
        core = _core(tmp_path)
        late = core.submit(_probe("late"), deadline=0.01)["job_id"]
        fresh = core.submit(_probe("fresh"))["job_id"]
        time.sleep(0.05)
        claimed = core.claim_job("w0")
        assert claimed.job_id == fresh
        assert core.result(late)["error"]["error_type"] == "DeadlineExceeded"
        core.close()


class TestCoreShedding:
    def test_high_priority_submit_sheds_lowest(self, tmp_path):
        core = _core(tmp_path, queue_max=2)
        core.submit(_probe("keep"), priority=1)
        victim_id = core.submit(_probe("cheap"), priority=9)["job_id"]
        response = core.submit(_probe("urgent"), priority=0)
        assert response["ok"] and not response["deduped"]
        view = core.result(victim_id)
        assert view["state"] == FAILED
        assert view["error"]["error_type"] == "LoadShed"
        assert core.stats.shed == 1
        submits = _family(core, "repro_submits_total")
        assert {"disposition": "shed"} in [s["labels"] for s in submits]
        core.close()

    def test_equal_priority_flood_gets_busy_not_shed(self, tmp_path):
        core = _core(tmp_path, queue_max=1, retry_after_s=1.5)
        core.submit(_probe("first"), priority=3)
        rejected = core.submit(_probe("second"), priority=3)
        assert rejected["code"] == "busy"
        assert rejected["retry_after"] >= 1.5
        assert core.stats.shed == 0
        core.close()

    def test_retry_after_scales_with_backlog_over_drain_rate(self, tmp_path):
        core = _core(tmp_path, queue_max=2, retry_after_s=0.5)
        # 30 terminal transitions in the window -> 1 job/s drain rate.
        now = time.time()
        for i in range(30):
            core._note_terminal(now - i * 0.5)
        core.submit(_probe("a"))
        core.submit(_probe("b"))
        rejected = core.submit(_probe("c"))
        assert rejected["code"] == "busy"
        # 2 pending at ~1/s -> about 2 seconds, never below the floor.
        assert 1.0 <= rejected["retry_after"] <= 4.0
        core.close()


class TestCoreRetention:
    def _finish_n(self, core, n):
        ids = []
        for i in range(n):
            job_id = core.submit(_probe(f"r{i}"))["job_id"]
            core.claim_job("w0")
            core.finish_job(job_id, {"echo": i})
            ids.append(job_id)
        return ids

    def test_eviction_answers_structured_and_survives_restart(self, tmp_path):
        core = _core(tmp_path, retain_jobs=1, retain_s=0.0)
        ids = self._finish_n(core, 3)
        assert core.enforce_retention() == 2
        assert core.stats.evicted == 2
        view = core.result(ids[0])
        assert view["code"] == "evicted"
        assert view["state"] == EVICTED
        assert view["terminal_state"] == DONE
        assert str(core.config.journal_path) == view["journal"]
        assert core.result(ids[2])["state"] == DONE
        core.close()
        reborn = _core(tmp_path, retain_jobs=1, retain_s=0.0)
        assert reborn.result(ids[0])["code"] == "evicted"
        assert reborn.result(ids[2])["state"] == DONE
        # The key was released: the same spec resubmits as a new job.
        again = reborn.submit(_probe("r0"))
        assert again["ok"] and not again["deduped"]
        assert again["job_id"] != ids[0]
        reborn.close()

    def test_online_compaction_shrinks_journal(self, tmp_path):
        core = _core(
            tmp_path, retain_jobs=1, retain_s=0.0,
            compact_min=10, compact_ratio=0.8,
        )
        self._finish_n(core, 8)
        core.enforce_retention()
        before = core.journal.records_in_file
        assert core.maybe_compact() is True
        assert core.journal.records_in_file < before
        assert core.stats.compactions == 1
        core.close()
        # The compacted journal still restores the full picture.
        reborn = _core(tmp_path, retain_jobs=1, retain_s=0.0)
        assert reborn.result("absent") ["code"] == "unknown_job"
        assert len(reborn.queue.evicted) == 7
        reborn.close()

    def test_compaction_respects_min_records(self, tmp_path):
        core = _core(tmp_path, compact_min=10_000)
        self._finish_n(core, 3)
        assert core.maybe_compact() is False
        core.close()


class TestCoreDiskPressure:
    def test_disk_full_fault_flips_and_recovers(self, tmp_path, monkeypatch):
        core = _core(tmp_path, min_free_mb=64.0)
        monkeypatch.setenv("REPRO_FAULTS", "site=disk_full,kind=raise,times=0")
        faults.reset_fault_state()
        assert core.check_disk() is True
        rejected = core.submit(_probe("nope"))
        assert rejected["code"] == "disk_pressure"
        assert rejected["retry_after"] > 0
        assert core.stats.disk_rejected == 1
        # Reads stay available in degraded mode.
        assert core.stats_view()["ok"]
        # Space returns: hysteresis exit, submits resume.
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_fault_state()
        assert core.check_disk() is False
        assert core.submit(_probe("yes"))["ok"]
        core.close()

    def test_degraded_mode_is_journaled(self, tmp_path, monkeypatch):
        core = _core(tmp_path, min_free_mb=64.0)
        monkeypatch.setenv("REPRO_FAULTS", "site=disk_full,kind=raise,times=1")
        faults.reset_fault_state()
        core.check_disk()
        core.close()
        records, _, _ = replay_file(tmp_path / "serve" / "journal.wal")
        modes = [r["mode"] for r in records if r["type"] == "degraded"]
        assert modes == ["enter"]


# ----------------------------------------------------------------------
# journal: online compaction is crash-safe at either phase
# ----------------------------------------------------------------------
class TestCompactionCrash:
    def _journal_with_records(self, tmp_path, n=4):
        journal = Journal(tmp_path / "j.wal")
        journal.open()
        for i in range(n):
            journal.append("submit", job_id=f"j{i}")
        return journal

    def test_crash_before_rename_keeps_old_journal(self, tmp_path, monkeypatch):
        journal = self._journal_with_records(tmp_path)
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=compaction_crash,kind=raise,phase=written"
        )
        faults.reset_fault_state()
        with pytest.raises(FaultInjected):
            journal.compact([{"type": "submit", "seq": 0, "job_id": "j0"}])
        journal.close()
        records, _, dropped = replay_file(tmp_path / "j.wal")
        assert dropped == 0
        assert len(records) == 4  # the old journal, intact

    def test_crash_after_rename_keeps_new_journal(self, tmp_path, monkeypatch):
        journal = self._journal_with_records(tmp_path)
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=compaction_crash,kind=raise,phase=replaced"
        )
        faults.reset_fault_state()
        with pytest.raises(FaultInjected):
            journal.compact([{"type": "submit", "seq": 0, "job_id": "j0"}])
        journal.close()
        records, _, dropped = replay_file(tmp_path / "j.wal")
        assert dropped == 0
        assert len(records) == 1  # the new journal, fully replaced


# ----------------------------------------------------------------------
# supervisor: adaptive scaling + gauge-label hygiene
# ----------------------------------------------------------------------
def _family(core, name):
    for family in core.metrics_view()["metrics"]["families"]:
        if family["name"] == name:
            return family["samples"]
    return []


def _heartbeat_workers(core):
    return {s["labels"]["worker"]
            for s in _family(core, "repro_heartbeat_age_seconds")}


def _workers_gauge(core):
    return {s["labels"]["state"]: s["value"]
            for s in _family(core, "repro_workers")}


class TestAutoscale:
    def test_pool_grows_under_pressure_and_retires_idle(self, tmp_path):
        core = _core(tmp_path)
        supervisor = Supervisor(
            core, workers=1, max_workers=2, scale_up_pending=2,
            scale_cooldown_s=0.0, idle_retire_s=0.2,
            heartbeat_s=0.2, job_timeout_s=30.0, restart_budget=1,
        )
        for i in range(4):
            core.submit(_probe(f"load{i}", seconds=0.3))
        supervisor.start()
        try:
            grew = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                supervisor_size = len(supervisor.workers)
                grew = grew or supervisor_size > 1
                pending = core.queue.pending_count()
                running = core.queue.running_count()
                if grew and pending == 0 and running == 0 \
                        and supervisor_size == 1:
                    break
                time.sleep(0.05)
            assert grew, "pool never scaled past the floor"
            assert len(supervisor.workers) == 1, "pool never converged back"
            # Only the survivor keeps a heartbeat label; retired and
            # never-booted names are gone from the registry.
            time.sleep(0.3)  # one more watchdog pass publishes ages
            live = {h.name for h in supervisor.workers}
            assert _heartbeat_workers(core) <= live
            gauge = _workers_gauge(core)
            assert sum(gauge.values()) == 1
        finally:
            supervisor.stop()
        core.close()

    def test_no_scaling_past_ceiling(self, tmp_path):
        core = _core(tmp_path)
        supervisor = Supervisor(
            core, workers=1, max_workers=1, scale_up_pending=1,
            scale_cooldown_s=0.0, idle_retire_s=30.0,
            heartbeat_s=0.2, job_timeout_s=30.0, restart_budget=1,
        )
        for i in range(6):
            core.submit(_probe(f"burst{i}"))
        supervisor.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                assert len(supervisor.workers) == 1
                if core.queue.pending_count() == 0 \
                        and core.queue.running_count() == 0:
                    break
                time.sleep(0.05)
        finally:
            supervisor.stop()
        core.close()

    def test_drop_worker_removes_gauge_label(self, tmp_path):
        core = _core(tmp_path)
        core.note_heartbeat("w0", 0.5)
        core.note_heartbeat("w1", 0.1)
        assert _heartbeat_workers(core) == {"w0", "w1"}
        core.drop_worker("w0")
        assert _heartbeat_workers(core) == {"w1"}
        # Dropping an unknown worker is a harmless no-op.
        core.drop_worker("w99")
        core.close()


# ----------------------------------------------------------------------
# client: breaker, backoff, resubmit-after-eviction
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_reconnect_error_carries_attempts_and_cause(self, tmp_path):
        with pytest.raises(ServeError) as excinfo:
            request(tmp_path / "no.sock", {"op": "ping"}, reconnect_s=0.2)
        error = excinfo.value
        assert error.context["attempts"] >= 1
        assert "FileNotFoundError" in error.context["last_error"]
        assert "attempt(s)" in str(error)

    def test_circuit_breaker_opens_after_consecutive_failures(self, tmp_path):
        client = ServeClient(
            tmp_path / "no.sock", reconnect_s=0.0,
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        for _ in range(2):
            with pytest.raises(ServeError):
                client.ping()
        # The third call fails fast without touching the socket.
        started = time.monotonic()
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert time.monotonic() - started < 0.1
        assert excinfo.value.context["code"] == "circuit_open"
        assert excinfo.value.context["failures"] == 2
        # After the cooldown the breaker lets a probe through again.
        time.sleep(0.25)
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.context.get("code") != "circuit_open"

    def test_run_backs_off_on_busy_then_succeeds(self, tmp_path, monkeypatch):
        client = ServeClient(tmp_path / "no.sock")
        replies = iter([
            {"ok": False, "code": "busy", "error": "full", "retry_after": 0.05},
            {"ok": True, "job_id": "j1", "state": PENDING, "deduped": False},
        ])
        monkeypatch.setattr(
            client, "submit", lambda job, **kw: next(replies)
        )
        monkeypatch.setattr(
            client, "wait",
            lambda job_id, **kw: {"ok": True, "state": DONE,
                                  "job_id": job_id, "result": {"echo": 1}},
        )
        started = time.monotonic()
        view = client.run(_probe("x"), timeout_s=10.0)
        assert view["state"] == DONE
        assert time.monotonic() - started >= 0.05  # honored the hint

    def test_run_resubmits_after_eviction(self, tmp_path, monkeypatch):
        client = ServeClient(tmp_path / "no.sock")
        submits = []

        def fake_submit(job, **kw):
            submits.append(job)
            return {"ok": True, "job_id": f"j{len(submits)}",
                    "state": PENDING, "deduped": False}

        waits = iter([
            {"ok": False, "code": "evicted", "state": EVICTED,
             "job_id": "j1", "terminal_state": DONE},
            {"ok": True, "state": DONE, "job_id": "j2",
             "result": {"echo": 2}},
        ])
        monkeypatch.setattr(client, "submit", fake_submit)
        monkeypatch.setattr(client, "wait", lambda job_id, **kw: next(waits))
        view = client.run(_probe("y"), timeout_s=10.0)
        assert view["state"] == DONE
        assert len(submits) == 2  # the eviction triggered one resubmit

    def test_run_surfaces_hard_rejections(self, tmp_path, monkeypatch):
        client = ServeClient(tmp_path / "no.sock")
        monkeypatch.setattr(
            client, "submit",
            lambda job, **kw: {"ok": False, "code": "bad_request",
                               "error": "nope"},
        )
        with pytest.raises(ServeError) as excinfo:
            client.run(_probe("z"), timeout_s=5.0)
        assert excinfo.value.context["code"] == "bad_request"
