"""Tests for the timing optimizer (repro.flow.opt)."""

import pytest

from repro.flow.design import Design
from repro.flow.opt import (
    AreaBudget,
    optimize_timing,
    recover_area,
)
from repro.flow.stages import legalize_all_tiers, place_with_congestion_control
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def make_design(pair, name="aes", period=0.7, scale=0.3):
    lib12, _ = pair
    nl = generate_netlist(name, lib12, scale=scale, seed=13)
    design = Design(
        name=name,
        config="2D_12T",
        netlist=nl,
        tier_libs={0: lib12},
        target_period_ns=period,
    )
    place_with_congestion_control(design)
    legalize_all_tiers(design)
    return design


class TestOptimizeTiming:
    def test_wns_improves(self, pair):
        design = make_design(pair, period=0.55)
        calc = design.calculator(placed=True)
        stats = optimize_timing(design, calc, max_iterations=6)
        assert stats.wns_after_ns > stats.wns_before_ns
        assert stats.upsized > 0

    def test_netlist_stays_valid(self, pair):
        design = make_design(pair, period=0.5)
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=6)
        design.netlist.validate()
        design.netlist.topological_order()

    def test_stops_when_target_met(self, pair):
        design = make_design(pair, period=3.0)  # trivially easy target
        calc = design.calculator(placed=True)
        stats = optimize_timing(design, calc, max_iterations=8)
        assert stats.iterations == 1
        assert stats.upsized == 0

    def test_area_budget_respected(self, pair):
        from repro.place.legalizer import row_capacity_um2

        design = make_design(pair, period=0.35)  # impossible target
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=20)
        used = design.netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        cap = row_capacity_um2(
            design.floorplan, design.tier_libs[0], 0
        )
        assert used <= 0.94 * cap

    def test_legalizable_after_optimization(self, pair):
        design = make_design(pair, period=0.35)
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=20)
        legalize_all_tiers(design)  # must not raise

    def test_cloning_kicks_in_at_impossible_targets(self, pair):
        design = make_design(pair, period=0.3)
        before = len(design.netlist.instances)
        calc = design.calculator(placed=True)
        stats = optimize_timing(design, calc, max_iterations=16)
        after = len(design.netlist.instances)
        assert stats.cloned == after - before - stats.buffers_added


class TestAreaBudget:
    def test_unbounded_without_floorplan(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=13)
        design = Design("aes", "2D", nl, {0: lib12})
        budget = AreaBudget(design)
        assert budget.can_grow(0, 1e9)

    def test_bounded_with_floorplan(self, pair):
        design = make_design(pair)
        budget = AreaBudget(design)
        assert budget.can_grow(0, 0.0)
        assert not budget.can_grow(0, 1e9)

    def test_apply_consumes(self, pair):
        design = make_design(pair)
        budget = AreaBudget(design, max_fill=0.99)
        import repro.place.legalizer as lg

        cap = lg.row_capacity_um2(design.floorplan, design.tier_libs[0], 0)
        used = design.netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        headroom = cap * 0.99 - used
        assert budget.can_grow(0, headroom * 0.9)
        budget.apply(0, headroom * 0.9)
        assert not budget.can_grow(0, headroom * 0.2)


class TestRecoverArea:
    def test_recovery_reduces_area_without_breaking_timing(self, pair):
        # First oversize at a tight target, then relax the target: the
        # recovered slack lets most of the upsizing be taken back.
        design = make_design(pair, period=0.55)
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=6)
        design.target_period_ns = 1.4
        base = run_sta(design.netlist, calc, 1.4, with_cell_slacks=False)
        area_before = design.netlist.cell_area_um2()
        n = recover_area(design, calc)
        assert n > 0
        assert design.netlist.cell_area_um2() < area_before
        after = run_sta(design.netlist, calc, 1.4, with_cell_slacks=False)
        assert after.wns_ns > -0.02 * 1.4 or after.wns_ns >= base.wns_ns - 0.05

    def test_recovery_skips_sequential(self, pair):
        design = make_design(pair, period=1.4)
        drives_before = {
            n: i.cell.drive
            for n, i in design.netlist.instances.items()
            if i.cell.is_sequential
        }
        calc = design.calculator(placed=True)
        recover_area(design, calc)
        for name, drive in drives_before.items():
            assert design.netlist.instances[name].cell.drive == drive
