"""Tests for clock tree synthesis (repro.cts.tree)."""

import pytest

from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.errors import FlowError
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def placed(pair, design="aes", tiers=1, scale=0.3):
    lib12, lib9 = pair
    nl = generate_netlist(design, lib12, scale=scale, seed=9)
    tier_libs = {0: lib12} if tiers == 1 else {0: lib12, 1: lib9}
    if tiers == 2:
        names = sorted(nl.instances)
        for name in names[::2]:
            inst = nl.instances[name]
            if inst.cell.is_macro:
                continue
            nl.rebind(name, lib9.equivalent_of(inst.cell))
            inst.tier = 1
    fp = build_floorplan(nl, tier_libs, utilization=0.7)
    global_place(nl, fp)
    return nl, tier_libs


class TestSingleTier:
    def test_all_sinks_served(self, pair):
        nl, tier_libs = placed(pair)
        cts = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.SINGLE)
        report = cts.run()
        sinks = {inst for inst, _pin in nl.clock_sinks()}
        assert set(report.latencies) == sinks

    def test_latencies_positive_and_bounded(self, pair):
        nl, tier_libs = placed(pair)
        report = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.SINGLE).run()
        for latency in report.latencies.values():
            assert 0 < latency < 2.0

    def test_skew_is_max_minus_min(self, pair):
        nl, tier_libs = placed(pair)
        report = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.SINGLE).run()
        values = report.latencies.values()
        assert report.max_skew_ns == pytest.approx(max(values) - min(values))
        assert report.max_skew_ns < report.max_latency_ns

    def test_single_policy_uses_tier0_only(self, pair):
        nl, tier_libs = placed(pair)
        report = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.SINGLE).run()
        assert set(report.buffer_count_by_tier) == {0}
        assert report.tier_fraction(0) == 1.0

    def test_power_and_area_positive(self, pair):
        nl, tier_libs = placed(pair)
        report = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.SINGLE, frequency_ghz=2.0
        ).run()
        assert report.power_mw > 0
        assert report.buffer_area_um2 > 0
        assert report.wirelength_mm > 0

    def test_power_scales_with_frequency(self, pair):
        nl, tier_libs = placed(pair)
        p1 = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.SINGLE, frequency_ghz=1.0
        ).run().power_mw
        p2 = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.SINGLE, frequency_ghz=2.0
        ).run().power_mw
        assert p2 == pytest.approx(2 * p1, rel=1e-6)

    def test_no_clock_raises(self, pair):
        from repro.netlist.core import Netlist

        lib12, _ = pair
        nl = Netlist("noclk")
        with pytest.raises(FlowError):
            ClockTreeSynthesizer(nl, {0: lib12}, TierPolicy.SINGLE)

    def test_unplaced_sink_raises(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=9)
        cts = ClockTreeSynthesizer(nl, {0: lib12}, TierPolicy.SINGLE)
        with pytest.raises(FlowError):
            cts.run()


class TestThreeDPolicies:
    def test_majority_spreads_buffers(self, pair):
        nl, tier_libs = placed(pair, tiers=2)
        report = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.MAJORITY, slow_tier=1
        ).run()
        assert report.buffer_count_by_tier.get(0, 0) > 0
        assert report.buffer_count_by_tier.get(1, 0) > 0

    def test_prefer_slow_is_top_die_heavy(self, pair):
        """Table VIII: >75% of hetero clock buffers sit on the top die."""
        nl, tier_libs = placed(pair, tiers=2)
        report = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.PREFER_SLOW, slow_tier=1
        ).run()
        assert report.tier_fraction(1) > 0.7

    def test_prefer_slow_has_smaller_buffer_area(self, pair):
        """9-track clock buffers shrink the clock area (Table VIII)."""
        nl, tier_libs = placed(pair, tiers=2)
        majority = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.MAJORITY, slow_tier=1
        ).run()
        slow = ClockTreeSynthesizer(
            nl, tier_libs, TierPolicy.PREFER_SLOW, slow_tier=1
        ).run()
        assert slow.buffer_area_um2 < majority.buffer_area_um2

    def test_slow_tier_tree_has_larger_latency(self, pair):
        """A 9-track clock tree is slower than a 12-track one (Table VIII).

        Force every buffer onto one tier by moving all sinks there; the
        library difference alone must separate the insertion delays.
        """
        lib12, lib9 = pair
        latencies = {}
        for target_tier, lib in ((0, lib12), (1, lib9)):
            nl, tier_libs = placed(pair, tiers=2)
            for inst in nl.sequential_instances():
                if inst.cell.is_macro:
                    continue
                nl.rebind(inst.name, lib.equivalent_of(inst.cell))
                inst.tier = target_tier
            report = ClockTreeSynthesizer(
                nl, tier_libs, TierPolicy.MAJORITY, slow_tier=1
            ).run()
            latencies[target_tier] = report.max_latency_ns
            assert report.tier_fraction(target_tier) == 1.0
        assert latencies[1] > latencies[0]

    def test_deterministic(self, pair):
        nl, tier_libs = placed(pair, tiers=2)
        r1 = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.MAJORITY).run()
        r2 = ClockTreeSynthesizer(nl, tier_libs, TierPolicy.MAJORITY).run()
        assert r1.latencies == r2.latencies
