"""Tests for level-shifter insertion (repro.flow.levelshift)."""

import pytest

from repro.flow import run_flow_hetero_3d
from repro.flow.design import Design
from repro.flow.levelshift import (
    boundary_violations,
    insert_level_shifters,
    needs_level_shifter,
)
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair, make_track_variant
from repro.netlist.core import Netlist, PortDirection


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def low_lib():
    return make_track_variant(9, vdd_v=0.55)


class TestRule:
    def test_low_to_high_beyond_vth_needs_shifter(self):
        assert needs_level_shifter(0.55, 0.90, 0.30)

    def test_small_gap_is_legal(self):
        assert not needs_level_shifter(0.81, 0.90, 0.30)

    def test_high_to_low_is_always_legal(self):
        assert not needs_level_shifter(0.90, 0.55, 0.30)
        assert not needs_level_shifter(0.90, 0.81, 0.30)


def make_crossing_design(pair, low_lib):
    """A 2-cell design: low-rail driver feeding a 12-track sink."""
    lib12, _ = pair
    nl = Netlist("x")
    nl.add_port("a", PortDirection.INPUT)
    drv = nl.add_instance("drv", low_lib.get(CellFunction.INV, 1))
    drv.tier = 1
    drv.x_um, drv.y_um = 0.0, 0.0
    nl.add_net("mid")
    nl.add_net("out")
    nl.connect("a", "drv", "A")
    nl.connect("mid", "drv", "Y")
    sink = nl.add_instance("sink", lib12.get(CellFunction.INV, 1))
    sink.x_um, sink.y_um = 10.0, 0.0
    nl.connect("mid", "sink", "A")
    nl.connect("out", "sink", "Y")
    return Design("x", "3D_HET", nl, {0: lib12, 1: low_lib})


class TestInsertion:
    def test_detects_and_fixes_violation(self, pair, low_lib):
        design = make_crossing_design(pair, low_lib)
        assert boundary_violations(design) == ["mid"]
        report = insert_level_shifters(design)
        assert report.shifters_inserted == 1
        assert report.violating_nets == 1
        assert boundary_violations(design) == []
        design.netlist.validate()

    def test_shifter_on_receiving_tier_and_library(self, pair, low_lib):
        design = make_crossing_design(pair, low_lib)
        insert_level_shifters(design)
        shifters = [
            i for i in design.netlist.instances.values()
            if i.cell.function is CellFunction.LEVEL_SHIFTER
        ]
        assert len(shifters) == 1
        assert shifters[0].tier == 0
        assert shifters[0].cell.library_name == "28nm_12T"

    def test_sink_rewired_through_shifter(self, pair, low_lib):
        design = make_crossing_design(pair, low_lib)
        insert_level_shifters(design)
        nl = design.netlist
        sink_net = nl.instances["sink"].net_of("A")
        driver = nl.driver_instance(nl.nets[sink_net])
        assert driver.cell.function is CellFunction.LEVEL_SHIFTER

    def test_idempotent(self, pair, low_lib):
        design = make_crossing_design(pair, low_lib)
        insert_level_shifters(design)
        second = insert_level_shifters(design)
        assert second.shifters_inserted == 0

    def test_reinsertion_reuses_existing_shifter(self, pair, low_lib):
        """A net that gains a fresh high-rail sink after insertion must
        route it through the existing shifter, not grow a second one."""
        lib12, _ = pair
        design = make_crossing_design(pair, low_lib)
        insert_level_shifters(design)
        nl = design.netlist
        late = nl.add_instance("late_sink", lib12.get(CellFunction.INV, 1))
        late.x_um, late.y_um = 20.0, 0.0
        nl.add_net("out2")
        nl.connect("mid", "late_sink", "A")
        nl.connect("out2", "late_sink", "Y")
        assert boundary_violations(design) == ["mid"]

        report = insert_level_shifters(design)
        assert report.shifters_inserted == 0
        shifters = [
            i for i in nl.instances.values()
            if i.cell.function is CellFunction.LEVEL_SHIFTER
        ]
        assert len(shifters) == 1
        assert boundary_violations(design) == []
        nl.validate()
        assert (nl.instances["sink"].net_of("A")
                == nl.instances["late_sink"].net_of("A"))

    def test_compatible_pair_needs_nothing(self, pair):
        lib12, lib9 = pair
        design = make_crossing_design(pair, lib9)
        assert boundary_violations(design) == []
        assert insert_level_shifters(design).shifters_inserted == 0


class TestFlowIntegration:
    def test_flow_rejects_illegal_pair_by_default(self, pair, low_lib):
        lib12, _ = pair
        with pytest.raises(ValueError):
            run_flow_hetero_3d(
                "aes", lib12, low_lib, period_ns=0.8, scale=0.2, seed=5
            )

    def test_flow_with_shifters_is_legal_and_valid(self, pair, low_lib):
        lib12, _ = pair
        design, result = run_flow_hetero_3d(
            "aes", lib12, low_lib, period_ns=0.8, scale=0.2, seed=5,
            allow_level_shifters=True,
        )
        assert design.notes.get("level_shifters", 0) > 0
        assert boundary_violations(design) == []
        design.netlist.validate()
        assert result.total_power_mw > 0
