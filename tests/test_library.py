"""Tests for the StdCellLibrary container (repro.liberty.library)."""

import pytest

from repro.errors import LibraryError
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def lib12(pair):
    return pair[0]


@pytest.fixture(scope="module")
def lib9(pair):
    return pair[1]


class TestLookups:
    def test_cell_by_name(self, lib12):
        cell = lib12.cell("INVX1_12T")
        assert cell.function is CellFunction.INV
        assert cell.drive == 1

    def test_missing_cell_raises(self, lib12):
        with pytest.raises(LibraryError):
            lib12.cell("NOPE")

    def test_get_by_function_and_drive(self, lib12):
        cell = lib12.get(CellFunction.NAND2, 4)
        assert cell.drive == 4

    def test_missing_drive_raises(self, lib12):
        with pytest.raises(LibraryError):
            lib12.get(CellFunction.NAND2, 3)

    def test_contains_and_len(self, lib12):
        assert "INVX1_12T" in lib12
        assert "NOPE" not in lib12
        assert len(lib12) > 50

    def test_drives_sorted(self, lib12):
        drives = lib12.drives_for(CellFunction.INV)
        assert drives == tuple(sorted(drives))
        assert drives[0] == 1

    def test_duplicate_cell_rejected(self, lib12):
        with pytest.raises(LibraryError):
            lib12.add_cell(lib12.cell("INVX1_12T"))


class TestSizing:
    def test_upsize_steps_through_drives(self, lib12):
        x1 = lib12.get(CellFunction.INV, 1)
        x2 = lib12.upsize(x1)
        assert x2.drive == 2
        assert lib12.upsize(lib12.get(CellFunction.INV, 8)) is None

    def test_downsize(self, lib12):
        x4 = lib12.get(CellFunction.INV, 4)
        assert lib12.downsize(x4).drive == 2
        assert lib12.downsize(lib12.get(CellFunction.INV, 1)) is None

    def test_upsize_reduces_drive_resistance(self, lib12):
        x1 = lib12.get(CellFunction.NAND2, 1)
        x4 = lib12.get(CellFunction.NAND2, 4)
        load = 20.0
        d1 = x1.worst_arc_to_output().delay.lookup(0.05, load)
        d4 = x4.worst_arc_to_output().delay.lookup(0.05, load)
        assert d4 < d1


class TestCrossLibrary:
    def test_equivalent_preserves_function_and_drive(self, lib12, lib9):
        for cell in lib12.cells:
            twin = lib9.equivalent_of(cell)
            assert twin.function is cell.function
            assert twin.drive == cell.drive
            assert twin.library_name == lib9.name

    def test_equivalent_falls_back_to_closest_drive(self, lib12, lib9):
        # CLKBUF exists at x16 in both; fabricate a lookup for a drive
        # that exists only via closest-match by asking for DFF x8's twin.
        dff8 = lib12.get(CellFunction.DFF, 8)
        twin = lib9.equivalent_of(dff8)
        assert twin.function is CellFunction.DFF

    def test_voltage_compatibility_rule(self, lib12, lib9):
        # 0.90 - 0.81 = 0.09 < 0.3*0.90 and < min vth: compatible.
        assert lib12.voltage_compatible_with(lib9)
        assert lib9.voltage_compatible_with(lib12)

    def test_voltage_rule_rejects_large_difference(self, lib12, lib9):
        import dataclasses

        low = dataclasses.replace(lib9, vdd_v=0.55, _cells=lib9._cells,
                                  _by_function=lib9._by_function)
        assert not lib12.voltage_compatible_with(low)

    def test_slew_ranges_overlap(self, lib12, lib9):
        assert lib12.slew_ranges_overlap(lib9)
