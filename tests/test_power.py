"""Tests for activity propagation and power analysis (repro.power)."""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist
from repro.power.activity import (
    CLOCK_ACTIVITY,
    propagate_activities,
)
from repro.power.analysis import analyze_power, net_switching_power_uw
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def libs(pair):
    return {lib.name: lib for lib in pair}


@pytest.fixture(scope="module")
def design(pair):
    return generate_netlist("aes", pair[0], scale=0.3, seed=2)


def make_calc(pair, nl):
    return DelayCalculator(
        nl, FanoutWireModel(pair[0]), {lib.name: lib for lib in pair}
    )


class TestActivityPropagation:
    def test_all_nets_have_activity(self, design):
        act = propagate_activities(design)
        for net in design.nets.values():
            assert net.name in act

    def test_clock_activity(self, design):
        act = propagate_activities(design)
        assert act["clk"] == CLOCK_ACTIVITY

    def test_activities_bounded(self, design):
        act = propagate_activities(design)
        for name, a in act.items():
            if name == "clk":
                continue
            assert 0.0 < a <= 1.0

    def test_activity_attenuates_through_and_gates(self, pair):
        lib12 = pair[0]
        nl = Netlist("att")
        nl.add_port("a", PortDirection.INPUT)
        nl.add_port("b", PortDirection.INPUT)
        nl.add_instance("g", lib12.get(CellFunction.AND2, 1))
        nl.add_net("y")
        nl.connect("a", "g", "A")
        nl.connect("b", "g", "B")
        nl.connect("y", "g", "Y")
        act = propagate_activities(nl, input_activity=0.2)
        assert act["y"] < 0.2

    def test_higher_input_activity_raises_everything(self, design):
        low = propagate_activities(design, input_activity=0.05)
        high = propagate_activities(design, input_activity=0.4)
        data_nets = [
            n.name
            for n in design.nets.values()
            if not n.is_clock and n.driver is not None
        ]
        higher = sum(1 for n in data_nets if high[n] >= low[n])
        assert higher > 0.9 * len(data_nets)


class TestPowerAnalysis:
    def test_components_positive(self, pair, design, libs):
        calc = make_calc(pair, design)
        p = analyze_power(design, calc, 1.0, libs)
        assert p.switching_mw > 0
        assert p.internal_mw > 0
        assert p.leakage_mw > 0
        assert p.total_mw == pytest.approx(
            p.switching_mw + p.internal_mw + p.leakage_mw + p.clock_mw
        )

    def test_power_scales_with_frequency(self, pair, design, libs):
        calc = make_calc(pair, design)
        p1 = analyze_power(design, calc, 1.0, libs)
        p2 = analyze_power(design, calc, 2.0, libs)
        assert p2.switching_mw == pytest.approx(2 * p1.switching_mw, rel=1e-6)
        assert p2.leakage_mw == pytest.approx(p1.leakage_mw, rel=1e-6)

    def test_clock_power_added(self, pair, design, libs):
        calc = make_calc(pair, design)
        p = analyze_power(design, calc, 1.0, libs, clock_power_mw=0.5)
        assert p.clock_mw == 0.5

    def test_nine_track_implementation_uses_less_power(self, pair, libs):
        lib12, lib9 = pair
        nl12 = generate_netlist("aes", lib12, scale=0.3, seed=2)
        nl9 = generate_netlist("aes", lib9, scale=0.3, seed=2)
        p12 = analyze_power(nl12, make_calc(pair, nl12), 1.0, libs)
        p9 = analyze_power(nl9, make_calc(pair, nl9), 1.0, libs)
        # same structure, slower/lower-voltage cells: strictly less power
        assert p9.total_mw < p12.total_mw
        assert p9.leakage_mw < p12.leakage_mw / 10

    def test_boundary_leakage_penalty(self, pair, libs):
        """A 12T cell driven from the 0.81V tier leaks more (Table III)."""
        lib12, lib9 = pair
        nl = Netlist("b")
        nl.add_port("a", PortDirection.INPUT)
        d9 = nl.add_instance("drv", lib9.get(CellFunction.INV, 1))
        d9.tier = 1
        nl.add_net("mid")
        nl.add_net("out")
        nl.connect("a", "drv", "A")
        nl.connect("mid", "drv", "Y")
        nl.add_instance("ld", lib12.get(CellFunction.INV, 1))
        nl.connect("mid", "ld", "A")
        nl.connect("out", "ld", "Y")
        calc = make_calc(pair, nl)
        hetero = analyze_power(nl, calc, 1.0, libs)

        nl2 = Netlist("b2")
        nl2.add_port("a", PortDirection.INPUT)
        nl2.add_instance("drv", lib12.get(CellFunction.INV, 1))
        nl2.add_net("mid")
        nl2.add_net("out")
        nl2.connect("a", "drv", "A")
        nl2.connect("mid", "drv", "Y")
        nl2.add_instance("ld", lib12.get(CellFunction.INV, 1))
        nl2.connect("mid", "ld", "A")
        nl2.connect("out", "ld", "Y")
        homo = analyze_power(nl2, make_calc(pair, nl2), 1.0, libs)
        # the heterogeneous load cell pays the exponential leakage factor
        # (its own leakage rises >2x), but the 9T driver leaks far less
        assert hetero.leakage_mw != homo.leakage_mw

    def test_net_switching_power(self, pair, design, libs):
        calc = make_calc(pair, design)
        act = propagate_activities(design)
        some_net = next(
            n.name for n in design.nets.values() if n.driver and not n.is_clock
        )
        p = net_switching_power_uw(design, calc, some_net, 1.0, act)
        assert p > 0
