"""Tests for the synthetic netlist generators (repro.netlist.generators).

Each design's published topology character is pinned down as a measurable
statistic, so "LDPC is wire dominant" is a test, not an adjective.
"""

import pytest

from repro.errors import NetlistError
from repro.liberty.presets import make_twelve_track_library
from repro.netlist.core import Netlist
from repro.netlist.generators import (
    DESIGN_NAMES,
    NetlistSpec,
    generate_netlist,
)
from repro.netlist.stats import compute_stats, logic_depth_histogram


@pytest.fixture(scope="module")
def lib():
    return make_twelve_track_library()


@pytest.fixture(scope="module")
def all_designs(lib):
    return {
        name: generate_netlist(name, lib, scale=0.4, seed=7)
        for name in DESIGN_NAMES
    }


class TestSpec:
    def test_rejects_unknown_design(self):
        with pytest.raises(NetlistError):
            NetlistSpec(name="fft")

    def test_rejects_non_positive_scale(self):
        with pytest.raises(NetlistError):
            NetlistSpec(name="aes", scale=0.0)


class TestStructuralValidity:
    def test_all_designs_validate(self, all_designs):
        for nl in all_designs.values():
            nl.validate()

    def test_all_designs_are_acyclic(self, all_designs):
        for nl in all_designs.values():
            nl.topological_order()

    def test_every_design_has_clock_and_ports(self, all_designs):
        for nl in all_designs.values():
            assert nl.clock_port == "clk"
            assert any(nl.ports)

    def test_every_design_registers_at_boundaries(self, all_designs):
        for nl in all_designs.values():
            assert len(nl.sequential_instances()) > 10


class TestDeterminismAndScale:
    def test_same_seed_same_netlist(self, lib):
        a = generate_netlist("cpu", lib, scale=0.4, seed=3)
        b = generate_netlist("cpu", lib, scale=0.4, seed=3)
        assert a.summary() == b.summary()
        assert sorted(a.instances) == sorted(b.instances)

    def test_different_seed_differs(self, lib):
        a = generate_netlist("ldpc", lib, scale=0.4, seed=3)
        b = generate_netlist("ldpc", lib, scale=0.4, seed=4)
        # connectivity differs even if counts are close
        nets_a = {n.name: tuple(sorted(n.sinks)) for n in a.nets.values()}
        nets_b = {n.name: tuple(sorted(n.sinks)) for n in b.nets.values()}
        assert nets_a != nets_b

    def test_scale_grows_instance_count(self, lib):
        small = generate_netlist("netcard", lib, scale=0.3, seed=1)
        big = generate_netlist("netcard", lib, scale=0.8, seed=1)
        assert len(big.instances) > 1.8 * len(small.instances)


class TestDesignCharacter:
    def test_netcard_is_largest(self, all_designs):
        sizes = {n: len(nl.instances) for n, nl in all_designs.items()}
        assert sizes["netcard"] == max(sizes.values())

    def test_only_cpu_has_memory_macros(self, all_designs):
        for name, nl in all_designs.items():
            if name == "cpu":
                assert len(nl.memory_macros()) >= 1
            else:
                assert nl.memory_macros() == []

    def test_cpu_macro_area_fraction_significant(self, all_designs):
        """Paper: cache contributes ~40% of the CPU footprint."""
        nl = all_designs["cpu"]
        macro = nl.cell_area_um2(lambda i: i.cell.is_macro)
        total = nl.cell_area_um2()
        assert 0.25 <= macro / total <= 0.75

    def test_cpu_has_deep_and_shallow_blocks(self, all_designs):
        """The mul block is the deep critical cluster of Section III-A1."""
        hist = logic_depth_histogram(all_designs["cpu"])
        assert max(hist) >= 20
        shallow = sum(c for d, c in hist.items() if d <= max(hist) // 2)
        assert shallow > 0.3 * sum(hist.values())

    def test_aes_depths_are_uniform(self, all_designs):
        """AES slices are symmetric: depth spread much tighter than CPU."""
        aes_hist = logic_depth_histogram(all_designs["aes"])
        cpu_hist = logic_depth_histogram(all_designs["cpu"])

        def spread(hist):
            total = sum(hist.values())
            mean = sum(d * c for d, c in hist.items()) / total
            var = sum(c * (d - mean) ** 2 for d, c in hist.items()) / total
            return var ** 0.5 / mean

        assert spread(aes_hist) < spread(cpu_hist)

    def test_ldpc_is_most_wire_dominant(self, all_designs):
        """LDPC has the highest wiring pressure per unit cell area."""
        pressure = {}
        for name, nl in all_designs.items():
            stats = compute_stats(nl)
            pressure[name] = stats.mean_fanout
        assert pressure["ldpc"] >= pressure["aes"]

    def test_blocks_tagged(self, all_designs):
        blocks = {i.block for i in all_designs["cpu"].instances.values()}
        assert {"mul", "alu", "lsu"} <= blocks
