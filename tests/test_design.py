"""Tests for the Design container (repro.flow.design)."""

import pytest

from repro.errors import FlowError
from repro.flow.design import Design
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def hetero_design(pair, name="cpu", scale=0.3):
    lib12, lib9 = pair
    nl = generate_netlist(name, lib12, scale=scale, seed=21)
    return Design(
        name=name,
        config="3D_HET",
        netlist=nl,
        tier_libs={0: lib12, 1: lib9},
        target_period_ns=1.0,
    )


class TestBasics:
    def test_tier_properties(self, pair):
        design = hetero_design(pair)
        assert design.tiers == 2
        assert design.is_3d
        assert design.frequency_ghz == pytest.approx(1.0)

    def test_2d_design(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=21)
        design = Design("aes", "2D_12T", nl, {0: lib12})
        assert not design.is_3d
        assert design.slow_tier() == 0

    def test_library_lookups(self, pair):
        lib12, lib9 = pair
        design = hetero_design(pair)
        assert design.library_for_tier(0) is lib12
        assert design.library_for_tier(1) is lib9
        assert design.reference_library() is lib12
        with pytest.raises(FlowError):
            design.library_for_tier(5)
        assert set(design.libraries_by_name()) == {lib12.name, lib9.name}

    def test_slow_tier_is_low_voltage_tier(self, pair):
        design = hetero_design(pair)
        assert design.slow_tier() == 1

    def test_clock_latencies_none_before_cts(self, pair):
        design = hetero_design(pair)
        assert design.clock_latencies() is None


class TestRemap:
    def test_remap_swaps_library_and_tier(self, pair):
        lib12, lib9 = pair
        design = hetero_design(pair)
        name = next(
            n for n, i in design.netlist.instances.items()
            if not i.cell.is_macro
        )
        design.remap_instance_to_tier(name, 1)
        inst = design.netlist.instances[name]
        assert inst.tier == 1
        assert inst.cell.library_name == lib9.name
        design.remap_instance_to_tier(name, 0)
        assert inst.cell.library_name == lib12.name

    def test_remap_preserves_function_and_drive(self, pair):
        design = hetero_design(pair)
        name = next(
            n for n, i in design.netlist.instances.items()
            if not i.cell.is_macro
        )
        inst = design.netlist.instances[name]
        before = (inst.cell.function, inst.cell.drive)
        design.remap_instance_to_tier(name, 1)
        assert (inst.cell.function, inst.cell.drive) == before

    def test_remap_macro_keeps_cell(self, pair):
        design = hetero_design(pair)
        macro = design.netlist.memory_macros()[0]
        cell_before = macro.cell
        design.remap_instance_to_tier(macro.name, 1)
        assert macro.tier == 1
        assert macro.cell is cell_before

    def test_remap_keeps_netlist_valid(self, pair):
        design = hetero_design(pair)
        names = [
            n for n, i in design.netlist.instances.items()
            if not i.cell.is_macro
        ][:100]
        for name in names:
            design.remap_instance_to_tier(name, 1)
        design.netlist.validate()
        design.netlist.topological_order()
