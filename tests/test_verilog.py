"""Tests for structural Verilog round-tripping (repro.netlist.verilog)."""

import pytest

from repro.errors import NetlistError
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.netlist.verilog import read_verilog, write_verilog


@pytest.fixture(scope="module")
def libs():
    lib12, lib9 = make_library_pair()
    return {lib12.name: lib12, lib9.name: lib9}


@pytest.fixture(scope="module")
def lib12(libs):
    return libs["28nm_12T"]


class TestRoundTrip:
    def test_small_design_round_trips(self, lib12, libs):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=5)
        text = write_verilog(nl)
        back = read_verilog(text, libs)
        assert back.name == nl.name
        assert sorted(back.instances) == sorted(nl.instances)
        assert sorted(back.nets) == sorted(nl.nets)
        for name, inst in nl.instances.items():
            twin = back.instances[name]
            assert twin.cell.name == inst.cell.name
            assert dict(twin.connected_pins()) == dict(inst.connected_pins())

    def test_tier_and_placement_round_trip(self, lib12, libs):
        nl = generate_netlist("ldpc", lib12, scale=0.2, seed=5)
        some = list(nl.instances.values())[:20]
        for i, inst in enumerate(some):
            inst.tier = i % 2
            inst.x_um = 1.25 * i
            inst.y_um = 0.5 * i
            inst.block = "special"
        back = read_verilog(write_verilog(nl), libs)
        for inst in some:
            twin = back.instances[inst.name]
            assert twin.tier == inst.tier
            assert twin.x_um == pytest.approx(inst.x_um)
            assert twin.y_um == pytest.approx(inst.y_um)
            assert twin.block == "special"

    def test_round_trip_validates(self, lib12, libs):
        nl = generate_netlist("netcard", lib12, scale=0.2, seed=5)
        back = read_verilog(write_verilog(nl), libs)
        back.validate()


class TestErrors:
    def test_unknown_cell_rejected(self, libs):
        text = """module m (clk);
  input clk;
  wire w;
  BOGUS_CELL u1 (.A(clk), .Y(w));
endmodule
"""
        with pytest.raises(NetlistError):
            read_verilog(text, libs)

    def test_missing_module_rejected(self, libs):
        with pytest.raises(NetlistError):
            read_verilog("wire w;", libs)


class TestTextFormat:
    def test_output_contains_declarations(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=5)
        text = write_verilog(nl)
        assert text.startswith("module aes")
        assert "endmodule" in text
        assert "input clk;" in text
        assert "// pragma repro" in text
