"""Chaos acceptance: served matrix under crash+hang+kill -9 == clean run.

The scenario the whole PR exists for: a five-configuration ``aes``
matrix is served while the harness injects

1. a worker crash at task entry (``site=worker,kind=exit``) -- the
   supervisor respawns the worker and requeues the job;
2. a wedged flow on the final configuration (``site=cell,kind=hang``)
   -- the attempt is alive but stuck when
3. the daemon itself is ``kill -9``'d mid-run.

A restarted daemon must recover the job from the journal, resume it
through the run-manifest, and converge to results **byte-identical** to
a clean in-process batch run -- with the result cache proving that no
completed flow ever executed twice (the final attempt's telemetry shows
cache hits for every pre-kill cell, flow runs only for the rest).
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.experiments import cache
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.runner import run_matrix
from tests.serve_utils import (
    child_pids,
    daemon_env,
    pid_alive,
    start_daemon,
    stop_daemon,
    wait_until,
)

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX-only chaos test"
)

DESIGN = "aes"
SCALE = 0.4
SEED = 17
PERIOD_NS = 1.1
HANG_CONFIG = CONFIG_NAMES[-1]  # the last cell the serial matrix runs

MATRIX_SPEC = {
    "kind": "matrix",
    "designs": [DESIGN],
    "configs": list(CONFIG_NAMES),
    "scale": SCALE,
    "seed": SEED,
    "periods": {DESIGN: PERIOD_NS},
}


def _manifest_key() -> str:
    return cache.manifest_key(
        (DESIGN,), tuple(CONFIG_NAMES), scale=SCALE, seed=SEED,
        periods={DESIGN: PERIOD_NS},
    )


def _completed_cells(served_cache) -> int:
    """Completed-cell count in the served run-manifest (daemon's cache)."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(served_cache)
    try:
        manifest = cache.load_manifest(_manifest_key())
    finally:
        if old is None:
            del os.environ["REPRO_CACHE_DIR"]
        else:
            os.environ["REPRO_CACHE_DIR"] = old
    return len(manifest.get("completed", [])) if manifest else 0


def test_served_matrix_survives_chaos_byte_identical(
    tmp_path, monkeypatch
):
    state_dir = tmp_path / "serve"
    served_cache = tmp_path / "cache-served"
    clean_cache = tmp_path / "cache-clean"
    env = daemon_env(
        state_dir,
        REPRO_CACHE_DIR=str(served_cache),
        REPRO_SERVE_WORKERS="1",
        REPRO_SERVE_HEARTBEAT_S="1.0",
        # Recovered claims keep counting attempts across restarts, so
        # the budget must absorb crash + kill + hang attempts.
        REPRO_SERVE_RESTART_BUDGET="10",
        REPRO_SERVE_JOB_TIMEOUT_S="300",
        # The hang must be long enough to be the thing kill -9
        # interrupts, but shorter than the job timeout and the final
        # wait: if the kill lands in the window after cell 4 completes
        # and *before* the worker reaches the hang site, the unconsumed
        # times=1 fault fires post-restart instead -- the recovered
        # attempt then just sleeps it off and still converges.
        REPRO_FAULTS=(
            "site=worker,kind=exit,times=1"
            f";site=cell,design={DESIGN},config={HANG_CONFIG}"
            ",kind=hang,seconds=45,times=1"
        ),
        REPRO_FAULTS_STATE=str(tmp_path / "fault-state"),
    )

    # --- incarnation 1: crash a worker, then die mid-hang -------------
    proc, client = start_daemon(state_dir, env=env)
    job_id = None
    try:
        response = client.submit(MATRIX_SPEC)
        assert response["ok"]
        job_id = response["job_id"]
        # Attempt 1 dies at worker entry (site=worker). Attempt 2 runs
        # cells serially, caching each, until it wedges on the last
        # configuration (site=cell hang).  Wait for all four pre-hang
        # cells, then kill -9 the daemon while the worker is hung.
        wait_until(
            lambda: _completed_cells(served_cache)
            >= len(CONFIG_NAMES) - 1,
            timeout_s=180,
            what="pre-hang cells to be cached",
            poll_s=0.2,
        )
        time.sleep(1.0)  # let the worker enter the hung cell
        workers = child_pids(proc.pid)
        assert workers, "daemon should have live workers"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        # The hung worker must not outlive the daemon: an orphan would
        # keep running the matrix and double-execute recovered cells.
        wait_until(
            lambda: not any(pid_alive(pid) for pid in workers),
            timeout_s=10, what="workers to die with the daemon",
        )
    finally:
        stop_daemon(proc)

    # --- incarnation 2: recover, dedup, finish --------------------------
    proc2, client2 = start_daemon(state_dir, env=env)
    try:
        stats = client2.stats()["stats"]
        assert stats["recovered"] == 1
        # Submitting the identical spec dedups onto the recovered job:
        # no duplicated work, same job id across the daemon's lifetimes.
        again = client2.submit(MATRIX_SPEC)
        assert again["deduped"] and again["job_id"] == job_id

        view = client2.wait(job_id, timeout_s=300, poll_s=0.5)
        assert view["state"] == "done"
        payload = view["result"]
        assert payload["ok"] is True
        assert payload["failed"] == []
        assert set(payload["results"]) == {
            f"{DESIGN}/{name}" for name in CONFIG_NAMES
        }

        # Telemetry proof of zero redundancy: the recovered attempt
        # loads every pre-kill cell from the result cache and runs
        # exactly one flow -- the cell the kill -9 interrupted (at
        # worst sleeping off a late-firing hang inside it first).
        telemetry = client2.stats()["telemetry"]
        assert telemetry["disk_hits"] == len(CONFIG_NAMES) - 1
        assert telemetry["flows_run"] == 1
        assert client2.stats()["stats"]["deduped"] >= 1
    finally:
        stop_daemon(proc2)

    # --- clean batch run: must be byte-identical ------------------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(clean_cache))
    clean = run_matrix(
        designs=(DESIGN,),
        config_names=tuple(CONFIG_NAMES),
        scale=SCALE,
        seed=SEED,
        jobs=1,
        keep_going=True,
        target_periods={DESIGN: PERIOD_NS},
    )
    assert clean.ok
    assert payload["target_periods"] == {DESIGN: PERIOD_NS}
    for name in CONFIG_NAMES:
        served_cell = payload["results"][f"{DESIGN}/{name}"]
        clean_cell = clean.results[(DESIGN, name)].to_dict()
        assert json.dumps(served_cell, sort_keys=True) == json.dumps(
            clean_cell, sort_keys=True
        ), f"served vs clean mismatch in {DESIGN}/{name}"
