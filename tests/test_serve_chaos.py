"""Chaos acceptance: served matrix under crash+hang+kill -9 == clean run.

The scenario the whole PR exists for: a five-configuration ``aes``
matrix is served while the harness injects

1. a worker crash at task entry (``site=worker,kind=exit``) -- the
   supervisor respawns the worker and requeues the job;
2. a wedged flow on the final configuration (``site=cell,kind=hang``)
   -- the attempt is alive but stuck when
3. the daemon itself is ``kill -9``'d mid-run.

A restarted daemon must recover the job from the journal, resume it
through the run-manifest, and converge to results **byte-identical** to
a clean in-process batch run -- with the result cache proving that no
completed flow ever executed twice (the final attempt's telemetry shows
cache hits for every pre-kill cell, flow runs only for the rest).

The whole run happens under observation: a subscribe client rides each
daemon incarnation collecting the event feed (and must not perturb the
byte-identical outcome), the supervisor's lifecycle actions
(worker boot, the injected crash's restart) are asserted from the feed,
the job's span tree is queried mid-run, ``repro metrics --prom`` is
scraped mid-run and validated as Prometheus exposition, and the
collected events replay through :class:`TopModel` to the job's true
final state.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments import cache
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.runner import run_matrix
from repro.obs.registry import validate_prometheus
from repro.serve.topview import TopModel
from tests.serve_utils import (
    child_pids,
    daemon_env,
    pid_alive,
    start_daemon,
    stop_daemon,
    wait_until,
)

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX-only chaos test"
)

DESIGN = "aes"
SCALE = 0.4
SEED = 17
PERIOD_NS = 1.1
HANG_CONFIG = CONFIG_NAMES[-1]  # the last cell the serial matrix runs

MATRIX_SPEC = {
    "kind": "matrix",
    "designs": [DESIGN],
    "configs": list(CONFIG_NAMES),
    "scale": SCALE,
    "seed": SEED,
    "periods": {DESIGN: PERIOD_NS},
}


def _manifest_key() -> str:
    return cache.manifest_key(
        (DESIGN,), tuple(CONFIG_NAMES), scale=SCALE, seed=SEED,
        periods={DESIGN: PERIOD_NS},
    )


def _completed_cells(served_cache) -> int:
    """Completed-cell count in the served run-manifest (daemon's cache)."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(served_cache)
    try:
        manifest = cache.load_manifest(_manifest_key())
    finally:
        if old is None:
            del os.environ["REPRO_CACHE_DIR"]
        else:
            os.environ["REPRO_CACHE_DIR"] = old
    return len(manifest.get("completed", [])) if manifest else 0


class _FeedCollector:
    """Background subscribe client: collects one incarnation's feed."""

    def __init__(self, socket_path):
        from repro.serve.client import ServeClient

        self.snapshots: list[dict] = []
        self.events: list[dict] = []
        self.stopped = False
        self._client = ServeClient(socket_path)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        for event in self._client.subscribe(idle_s=0.3, reconnect_s=3.0):
            if self.stopped:
                return
            if event is None:
                continue
            if "snapshot" in event:
                self.snapshots.append(event)
            else:
                self.events.append(event)

    def stop(self, timeout_s: float = 15.0):
        self.stopped = True
        self._thread.join(timeout_s)
        assert not self._thread.is_alive(), "feed collector did not stop"

    def lifecycle_actions(self) -> list[str]:
        return [
            e.get("action") for e in self.events
            if e.get("event") == "lifecycle"
        ]

    def replay(self) -> TopModel:
        model = TopModel()
        for snapshot in self.snapshots[:1]:
            model.apply_snapshot(snapshot)
        for event in self.events:
            model.apply(event)
        return model


def _scrape_prometheus(env: dict) -> str:
    """``repro metrics`` via the CLI, exactly as the CI job scrapes it."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "metrics"],
        env=env, capture_output=True, text=True, timeout=30,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_served_matrix_survives_chaos_byte_identical(
    tmp_path, monkeypatch
):
    state_dir = tmp_path / "serve"
    served_cache = tmp_path / "cache-served"
    clean_cache = tmp_path / "cache-clean"
    env = daemon_env(
        state_dir,
        REPRO_CACHE_DIR=str(served_cache),
        REPRO_SERVE_WORKERS="1",
        REPRO_SERVE_HEARTBEAT_S="1.0",
        # Recovered claims keep counting attempts across restarts, so
        # the budget must absorb crash + kill + hang attempts.
        REPRO_SERVE_RESTART_BUDGET="10",
        REPRO_SERVE_JOB_TIMEOUT_S="300",
        # The hang must be long enough to be the thing kill -9
        # interrupts, but shorter than the job timeout and the final
        # wait: if the kill lands in the window after cell 4 completes
        # and *before* the worker reaches the hang site, the unconsumed
        # times=1 fault fires post-restart instead -- the recovered
        # attempt then just sleeps it off and still converges.
        REPRO_FAULTS=(
            "site=worker,kind=exit,times=1"
            f";site=cell,design={DESIGN},config={HANG_CONFIG}"
            ",kind=hang,seconds=45,times=1"
        ),
        REPRO_FAULTS_STATE=str(tmp_path / "fault-state"),
    )

    # --- incarnation 1: crash a worker, then die mid-hang -------------
    proc, client = start_daemon(state_dir, env=env)
    feed1 = _FeedCollector(state_dir / "serve.sock")
    job_id = None
    try:
        response = client.submit(MATRIX_SPEC)
        assert response["ok"]
        job_id = response["job_id"]
        # Attempt 1 dies at worker entry (site=worker). Attempt 2 runs
        # cells serially, caching each, until it wedges on the last
        # configuration (site=cell hang).  Wait for all four pre-hang
        # cells, then kill -9 the daemon while the worker is hung.
        wait_until(
            lambda: _completed_cells(served_cache)
            >= len(CONFIG_NAMES) - 1,
            timeout_s=180,
            what="pre-hang cells to be cached",
            poll_s=0.2,
        )
        time.sleep(1.0)  # let the worker enter the hung cell
        workers = child_pids(proc.pid)
        assert workers, "daemon should have live workers"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        # The hung worker must not outlive the daemon: an orphan would
        # keep running the matrix and double-execute recovered cells.
        wait_until(
            lambda: not any(pid_alive(pid) for pid in workers),
            timeout_s=10, what="workers to die with the daemon",
        )
    finally:
        stop_daemon(proc)
        feed1.stop()  # its reconnect window expired with the daemon

    # The injected worker crash is visible in the feed as supervisor
    # lifecycle events: the boot of the pool, then the restart.
    actions = feed1.lifecycle_actions()
    assert "worker_boot" in actions
    assert "worker_restart" in actions
    # ... and the crashed attempt's requeue as a job_state transition.
    requeues = [
        e for e in feed1.events
        if e.get("event") == "job_state" and e.get("job_id") == job_id
        and e.get("state") == "pending" and e.get("reason")
    ]
    assert requeues, "worker crash should requeue the job on the feed"
    # Mid-chaos, the fold of everything streamed so far shows the job
    # alive (running or requeued), never invented as terminal.
    mid_model = feed1.replay()
    assert mid_model.job_state(job_id) in ("pending", "running")

    # --- incarnation 2: recover, dedup, finish --------------------------
    proc2, client2 = start_daemon(state_dir, env=env)
    feed2 = _FeedCollector(state_dir / "serve.sock")
    try:
        stats = client2.stats()["stats"]
        assert stats["recovered"] == 1
        # Submitting the identical spec dedups onto the recovered job:
        # no duplicated work, same job id across the daemon's lifetimes.
        again = client2.submit(MATRIX_SPEC)
        assert again["deduped"] and again["job_id"] == job_id

        # Mid-run observability, while the recovered attempt works:
        wait_until(
            lambda: client2.status(job_id).get("state") == "running",
            timeout_s=60, what="recovered job to be claimed",
        )
        trace_view = client2.trace(job_id)
        # (the job may race to done between the two calls; what matters
        # is that the query is answered while work was in flight)
        assert trace_view["ok"]
        assert trace_view["state"] in ("running", "done")
        assert isinstance(trace_view["trace"], list)  # valid mid-run
        prom = _scrape_prometheus(env)
        assert validate_prometheus(prom) == []
        for required in (
            "repro_queue_depth",
            "repro_jobs_running",
            "repro_job_wait_seconds",
            "repro_job_run_seconds",
            "repro_journal_fsync_seconds",
            "repro_worker_restarts_total",
            "repro_submits_total",
        ):
            assert required in prom, f"{required} missing from exposition"
        assert 'repro_jobs_total{state="recovered"} 1' in prom

        view = client2.wait(job_id, timeout_s=300, poll_s=0.5)
        assert view["state"] == "done"
        payload = view["result"]
        assert payload["ok"] is True
        assert payload["failed"] == []
        assert set(payload["results"]) == {
            f"{DESIGN}/{name}" for name in CONFIG_NAMES
        }

        # Telemetry proof of zero redundancy: the recovered attempt
        # loads every pre-kill cell from the result cache and runs
        # exactly one flow -- the cell the kill -9 interrupted (at
        # worst sleeping off a late-firing hang inside it first).
        telemetry = client2.stats()["telemetry"]
        assert telemetry["disk_hits"] == len(CONFIG_NAMES) - 1
        assert telemetry["flows_run"] == 1
        assert client2.stats()["stats"]["deduped"] >= 1

        # The finished job's stitched trace is retrievable after the
        # fact, and the streamed events fold to its true final state.
        final_trace = client2.trace(job_id)
        assert final_trace["ok"] and final_trace["state"] == "done"
        wait_until(
            lambda: feed2.replay().job_state(job_id) == "done",
            timeout_s=10, what="feed to stream the terminal transition",
        )
        model = feed2.replay()
        assert model.job_state(job_id) == "done"
        assert model.counts().get("done", 0) >= 1
        assert "worker_boot" in feed2.lifecycle_actions()
    finally:
        stop_daemon(proc2)
        feed2.stop()

    # --- clean batch run: must be byte-identical ------------------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(clean_cache))
    clean = run_matrix(
        designs=(DESIGN,),
        config_names=tuple(CONFIG_NAMES),
        scale=SCALE,
        seed=SEED,
        jobs=1,
        keep_going=True,
        target_periods={DESIGN: PERIOD_NS},
    )
    assert clean.ok
    assert payload["target_periods"] == {DESIGN: PERIOD_NS}
    for name in CONFIG_NAMES:
        served_cell = payload["results"][f"{DESIGN}/{name}"]
        clean_cell = clean.results[(DESIGN, name)].to_dict()
        assert json.dumps(served_cell, sort_keys=True) == json.dumps(
            clean_cell, sort_keys=True
        ), f"served vs clean mismatch in {DESIGN}/{name}"


# ======================================================================
# act two: sustained overload
# ======================================================================
FLOW_CONFIG = CONFIG_NAMES[0]
FLOW_SPEC = {
    "kind": "flow",
    "design": DESIGN,
    "config": FLOW_CONFIG,
    "period_ns": PERIOD_NS,
    "scale": SCALE,
    "seed": SEED,
}


def _probe_spec(nonce: str, **extra) -> dict:
    return {"kind": "probe", "nonce": nonce, **extra}


def test_overload_act_sheds_expires_and_survives_compaction_kill(
    tmp_path, monkeypatch
):
    """The overload act: flood past high-water, die mid-compaction.

    One flow job (the work that *must* survive) rides along while the
    harness floods the daemon 4x past its high-water mark with mixed
    priorities and deadlines: low-priority probes are shed for a
    higher-priority submit, a deadlined probe expires in the queue as a
    structured ``DeadlineExceeded`` without ever claiming a worker, and
    overflow submits bounce with drain-rate ``retry_after`` hints.
    Retention then evicts terminal probes until online compaction kicks
    in -- where an injected ``kind=exit`` kills the daemon mid-compact,
    before the rename.  The restarted daemon must replay the intact
    journal, finish every accepted job, and serve the flow result
    byte-identical to a clean in-process run with zero redundant flow
    executions (cache telemetry proves it).  Metrics stay a valid
    Prometheus exposition throughout, with the shed disposition and the
    worker-pool gauge visible.
    """
    state_dir = tmp_path / "serve"
    served_cache = tmp_path / "cache-served"
    clean_cache = tmp_path / "cache-clean"
    env = daemon_env(
        state_dir,
        REPRO_CACHE_DIR=str(served_cache),
        REPRO_SERVE_WORKERS="1",
        REPRO_SERVE_MAX_WORKERS="2",
        REPRO_SERVE_SCALE_UP_PENDING="2",
        REPRO_SERVE_SCALE_COOLDOWN_S="0.3",
        REPRO_SERVE_IDLE_RETIRE_S="5.0",
        REPRO_SERVE_HEARTBEAT_S="1.0",
        REPRO_SERVE_RESTART_BUDGET="10",
        REPRO_SERVE_JOB_TIMEOUT_S="120",
        REPRO_SERVE_QUEUE_MAX="4",
        REPRO_SERVE_RETAIN_JOBS="4",
        REPRO_SERVE_RETAIN_S="0",
        # High enough that compaction cannot fire before the churn
        # phase deliberately pushes the journal past it.
        REPRO_SERVE_COMPACT_MIN="150",
        REPRO_SERVE_COMPACT_RATIO="0.6",
        REPRO_FAULTS="site=compaction_crash,kind=exit,phase=written,times=1",
        REPRO_FAULTS_STATE=str(tmp_path / "fault-state"),
    )

    # --- incarnation 1: flood, shed, expire, die mid-compaction -------
    proc, client = start_daemon(state_dir, env=env)
    feed1 = _FeedCollector(state_dir / "serve.sock")
    try:
        # The must-survive work first, completed before the storm.
        flow_resp = client.submit(FLOW_SPEC)
        assert flow_resp["ok"]
        flow_id = flow_resp["job_id"]
        flow_view = client.wait(flow_id, timeout_s=120, poll_s=0.2)
        assert flow_view["state"] == "done"
        payload1 = flow_view["result"]["result"]

        # Deadline expiry: saturate the (still small) pool with slow
        # probes, then queue a deadlined probe behind them -- it must
        # fail as DeadlineExceeded in the queue, never claiming a
        # worker.
        for i in range(3):
            client.submit(_probe_spec(f"slow-{i}", seconds=1.0), priority=5)
        dl_resp = client.submit(
            _probe_spec("deadlined", seconds=0.0), priority=8, deadline=0.1
        )
        assert dl_resp["ok"]
        wait_until(
            lambda: client.status(dl_resp["job_id"]).get("state") == "failed",
            timeout_s=30, what="deadlined probe to expire", poll_s=0.1,
        )
        dl_view = client.result(dl_resp["job_id"])
        assert dl_view["error"]["error_type"] == "DeadlineExceeded"

        # Flood 4x past the high-water mark with mixed priorities and
        # deadlines: some get in, the rest bounce with retry hints.
        codes = []
        for i in range(16):
            resp = client.submit(
                _probe_spec(f"flood-{i}", seconds=0.5),
                priority=5,
                deadline=60.0 if i % 3 == 0 else 0.0,
            )
            codes.append(resp.get("code") if not resp["ok"] else "accepted")
            if resp.get("code") == "busy":
                assert resp["retry_after"] > 0
        assert "accepted" in codes
        assert "busy" in codes

        # Priority-aware shedding: keep the backlog full of priority-5
        # probes and push priority-0 submits until one evicts a victim.
        def _shed_count():
            return client.stats()["stats"]["shed"]

        vip = 0
        while _shed_count() == 0:
            assert vip < 40, "priority-0 submits never triggered a shed"
            for j in range(4):
                client.submit(
                    _probe_spec(f"refill-{vip}-{j}", seconds=0.5), priority=5
                )
            client.submit(_probe_spec(f"vip-{vip}"), priority=0)
            vip += 1
        assert _shed_count() >= 1

        # Mid-overload the exposition is still valid Prometheus, with
        # the shed disposition counted and the pool gauge published.
        prom = _scrape_prometheus(env)
        assert validate_prometheus(prom) == []
        assert 'repro_submits_total{disposition="shed"}' in prom
        assert "repro_workers{" in prom
        assert "repro_evictions_total" in prom

        # The adaptive pool grew past its floor under the backlog.
        wait_until(
            lambda: "worker_scale_up" in feed1.lifecycle_actions(),
            timeout_s=30, what="the pool to scale up on the feed",
        )

        # Churn: waves of instant probes push the journal past the
        # compaction threshold; the injected fault kills the daemon
        # mid-compact, before the rename (old journal stays intact).
        wave = 0
        deadline_t = time.monotonic() + 120.0
        while proc.poll() is None:
            assert time.monotonic() < deadline_t, (
                "daemon never reached the injected compaction crash"
            )
            for j in range(8):
                try:
                    client.submit(_probe_spec(f"churn-{wave}-{j}"))
                except Exception:  # noqa: BLE001 -- daemon may die mid-wave
                    break
            wave += 1
            time.sleep(0.2)
        proc.wait(timeout=10)
    finally:
        stop_daemon(proc)
        feed1.stop()

    # The feed streamed the overload coherently before the crash: the
    # shed victim failed with its structured reason, the deadlined
    # probe expired, and retention evictions were announced.
    feed_events = feed1.events
    shed_events = [
        e for e in feed_events
        if e.get("event") == "job_state" and e.get("state") == "failed"
        and e.get("error_type") == "LoadShed"
    ]
    assert shed_events, "shed victim never hit the feed"
    expired_events = [
        e for e in feed_events
        if e.get("event") == "job_state"
        and e.get("error_type") == "DeadlineExceeded"
    ]
    assert expired_events, "deadline expiry never hit the feed"
    evict_events = [
        e for e in feed_events
        if e.get("event") == "job_state" and e.get("state") == "evicted"
    ]
    assert evict_events, "retention evictions never hit the feed"

    # --- incarnation 2: replay the intact journal, finish the work ----
    proc2, client2 = start_daemon(state_dir, env=env)
    try:
        # Everything the first daemon accepted converges to a terminal
        # answer (done, failed, or an evicted tombstone) -- nothing is
        # lost and nothing stays pending forever.
        wait_until(
            lambda: client2.stats()["ok"], timeout_s=30,
            what="restarted daemon to answer stats",
        )
        wait_until(
            lambda: all(
                client2.status(e["job_id"]).get("state")
                in ("done", "failed", "evicted")
                for e in shed_events[:1]
            ),
            timeout_s=30, what="recovered jobs to settle",
        )

        # The flow result survives byte-identical with zero redundant
        # executions: resident results dedup, evicted ones resubmit and
        # load from the content-addressed cache -- either way no flow
        # runs again in this incarnation.
        view2 = client2.run(FLOW_SPEC, timeout_s=120, poll_s=0.2)
        assert view2["state"] == "done"
        payload2 = view2["result"]["result"]
        assert json.dumps(payload2, sort_keys=True) == json.dumps(
            payload1, sort_keys=True
        )
        telemetry = client2.stats()["telemetry"]
        assert telemetry["flows_run"] == 0, (
            "the restarted daemon re-executed a cached flow"
        )

        # Metrics stayed coherent across the crash: a fresh, valid
        # exposition with the worker pool gauge pre-seeded.
        prom2 = _scrape_prometheus(env)
        assert validate_prometheus(prom2) == []
        assert "repro_workers{" in prom2
    finally:
        stop_daemon(proc2)

    # --- clean in-process run: byte-identical flow result -------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(clean_cache))
    from repro.experiments.runner import run_configuration

    _design, clean_result = run_configuration(
        DESIGN, FLOW_CONFIG, period_ns=PERIOD_NS, scale=SCALE, seed=SEED
    )
    assert json.dumps(payload1, sort_keys=True) == json.dumps(
        clean_result.to_dict(), sort_keys=True
    )
