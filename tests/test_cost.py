"""Tests for the Table IV cost model (repro.cost.model)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CostModelError
from repro.cost.model import (
    CostModel,
    performance_per_cost,
    power_delay_product_pj,
)


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestPublishedConstants:
    """The Table IV headline numbers must come out exactly."""

    def test_2d_wafer_cost(self, model):
        assert model.wafer_cost_2d() == pytest.approx(0.96)

    def test_3d_wafer_cost(self, model):
        assert model.wafer_cost_3d() == pytest.approx(1.97)

    def test_wafer_diameter_and_area(self, model):
        assert model.wafer_diameter_mm == 300.0
        assert model.wafer_area_mm2 == pytest.approx(70685.8, rel=1e-4)

    def test_defaults_match_table4(self, model):
        assert model.feol_fraction == 0.30
        assert model.integration_penalty == 0.05
        assert model.defect_density_per_mm2 == 0.2
        assert model.wafer_yield == 0.95
        assert model.yield_degradation_3d == 0.95


class TestEquations:
    def test_dies_per_wafer_eq1(self, model):
        """Eq. (1): A_w/A_d - sqrt(2*pi*A_w/A_d)."""
        import math

        ad = 0.5
        aw = model.wafer_area_mm2
        expected = aw / ad - math.sqrt(2 * math.pi * aw / ad)
        assert model.dies_per_wafer(ad) == pytest.approx(expected)

    def test_yield_eq2(self, model):
        """Eq. (2): kappa * (1 + A_d*D_w/2)^-2."""
        ad = 1.0
        expected = 0.95 * (1 + 1.0 * 0.2 / 2) ** -2
        assert model.die_yield(ad, tiers=1) == pytest.approx(expected)

    def test_yield_eq3_includes_beta(self, model):
        ad = 1.0
        assert model.die_yield(ad, 2) == pytest.approx(
            model.die_yield(ad, 1) * 0.95
        )

    def test_die_cost_eq5(self, model):
        """Eq. (5): wafer cost over *good* dies -- the good-die count
        already folds in the die yield, which must not be applied twice."""
        report = model.die_cost(0.2, tiers=1)
        expected = model.wafer_cost_2d() / report.good_dies
        assert report.die_cost == pytest.approx(expected)
        assert report.good_dies == pytest.approx(
            report.dies_per_wafer * report.die_yield
        )

    def test_die_cost_reproduces_table6_aes(self, model):
        """The corrected Eq. (5) lands on the paper's printed AES die cost
        (1.97e-6 C' at the Table VI footprint) almost exactly."""
        assert model.die_cost(0.126 / 2, tiers=2).die_cost * 1e6 == pytest.approx(
            1.97, rel=5e-3
        )

    def test_paper_scale_cpu_cost(self, model):
        """Hetero CPU: footprint ~0.195 mm2/tier -> ~6-8e-6 C' (Table VI 6.26)."""
        report = model.die_cost(0.195, tiers=2)
        assert 5e-6 < report.die_cost < 9e-6

    def test_cost_per_cm2_3d_premium(self, model):
        """3-D costs more per cm2 of silicon (integration + yield)."""
        area = 0.2
        c2d = model.die_cost(area, 1).cost_per_cm2
        c3d = model.die_cost(area / 2, 2).cost_per_cm2
        assert c3d > c2d
        # ... but only by a few percent at these die sizes
        assert c3d / c2d < 1.15


class TestMonotonicity:
    @given(area=st.floats(min_value=0.05, max_value=100.0))
    def test_bigger_die_costs_more(self, model, area):
        small = model.die_cost(area, 1).die_cost
        big = model.die_cost(area * 1.5, 1).die_cost
        assert big > small

    @given(area=st.floats(min_value=0.05, max_value=100.0))
    def test_3d_die_costs_more_than_2d_same_footprint(self, model, area):
        assert model.die_cost(area, 2).die_cost > model.die_cost(area, 1).die_cost

    def test_halved_footprint_3d_vs_2d(self, model):
        """3-D with half footprint still costs a bit more than the 2-D die
        of the full area (the paper's 'added die cost in 3-D')."""
        full = model.die_cost(0.4, 1).die_cost
        stacked = model.die_cost(0.2, 2).die_cost
        assert stacked > full


class TestErrors:
    def test_bad_yields_rejected(self):
        with pytest.raises(CostModelError):
            CostModel(wafer_yield=0.0)
        with pytest.raises(CostModelError):
            CostModel(yield_degradation_3d=1.5)

    def test_negative_defects_rejected(self):
        with pytest.raises(CostModelError):
            CostModel(defect_density_per_mm2=-0.1)

    def test_bad_die_area_rejected(self, model):
        with pytest.raises(CostModelError):
            model.die_cost(0.0, 1)

    def test_bad_tier_count_rejected(self, model):
        with pytest.raises(CostModelError):
            model.die_yield(0.2, 3)

    def test_die_bigger_than_wafer_rejected(self, model):
        with pytest.raises(CostModelError):
            model.die_cost(1e6, 1)


class TestDerivedMetrics:
    def test_pdp(self):
        assert power_delay_product_pj(100.0, 0.8) == pytest.approx(80.0)
        with pytest.raises(CostModelError):
            power_delay_product_pj(100.0, -0.1)

    def test_ppc_matches_table6_formula(self):
        """CPU row: 1.2 GHz, 188 mW, 6.26e-6 C' -> PPC 1.02."""
        ppc = performance_per_cost(1.2, 188.0, 6.26)
        assert ppc == pytest.approx(1.02, rel=0.01)

    def test_ppc_rejects_nonpositive(self):
        with pytest.raises(CostModelError):
            performance_per_cost(1.0, 0.0, 1.0)
