"""Tests for repro.log: the $REPRO_LOG console-handler bootstrap."""

from __future__ import annotations

import logging

import pytest

from repro import log


@pytest.fixture(autouse=True)
def reset_warn_flag(monkeypatch):
    """Each test sees a process that has not warned about $REPRO_LOG yet."""
    monkeypatch.setattr(log, "_warned_bad_level", False)


def test_valid_level_is_applied(monkeypatch):
    monkeypatch.setenv(log.ENV_LOG_LEVEL, "debug")
    logger = log.init_from_env()
    assert logger.level == logging.DEBUG
    monkeypatch.setenv(log.ENV_LOG_LEVEL, "error")
    assert log.init_from_env().level == logging.ERROR


def test_default_when_unset(monkeypatch):
    monkeypatch.delenv(log.ENV_LOG_LEVEL, raising=False)
    assert log.init_from_env().level == logging.WARNING


def test_invalid_level_warns_once_and_falls_back(monkeypatch, caplog):
    monkeypatch.setenv(log.ENV_LOG_LEVEL, "loud")
    with caplog.at_level(logging.WARNING, logger="repro"):
        logger = log.init_from_env()
        log.init_from_env()  # second call must not warn again
    assert logger.level == logging.WARNING
    warnings = [
        r for r in caplog.records if "not a recognized level" in r.message
    ]
    assert len(warnings) == 1
    assert "'loud'" in warnings[0].getMessage()
    assert "falling back to 'warning'" in warnings[0].getMessage()


def test_repeated_init_does_not_stack_handlers(monkeypatch):
    monkeypatch.setenv(log.ENV_LOG_LEVEL, "info")
    log.init_from_env()
    before = list(log.get_logger().handlers)
    log.init_from_env()
    assert log.get_logger().handlers == before
