"""Interrupt hygiene: a SIGINT'd matrix must not leak pool workers.

Regression for the orphaned-pool bug: Ctrl-C during a parallel
``run_matrix`` used to kill only the parent, leaving hung pool workers
burning CPU behind it (and holding cells a retry would then double-run).
``run_jobs_with_retry`` now tears the pool down on *any* BaseException,
and the flock-based manifest lock evaporates with the holder.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.errors import LockError
from repro.experiments import cache
from tests.serve_utils import SRC, child_pids, pid_alive, wait_until

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX-only interrupt test"
)

CONFIGS = ("2D", "3D_HOM")

# Unhandled KeyboardInterrupt exits CPython with code 1, so the script
# converts it to the conventional 128+SIGINT itself -- which also proves
# the interrupt propagated out of run_matrix instead of being swallowed.
SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.experiments.runner import run_matrix

    try:
        run_matrix(
            designs=("aes",),
            config_names={configs!r},
            scale=0.4,
            seed=3,
            jobs=2,
            keep_going=True,
            target_periods={{"aes": 1.1}},
        )
    except KeyboardInterrupt:
        sys.exit(130)
    """
).format(configs=CONFIGS)


def test_sigint_kills_pool_workers_and_releases_manifest_lock(
    tmp_path, monkeypatch
):
    cache_dir = tmp_path / "cache"
    script = tmp_path / "interrupted_matrix.py"
    script.write_text(SCRIPT)
    env = os.environ.copy()
    env.update(
        PYTHONPATH=str(SRC),
        REPRO_CACHE_DIR=str(cache_dir),
        # Wedge every cell: both pool workers hang inside their flow, so
        # the interrupt arrives mid-round with live, stuck children.
        REPRO_FAULTS="site=cell,kind=hang,seconds=120,times=0",
    )
    proc = subprocess.Popen(
        [sys.executable, str(script)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        workers = wait_until(
            lambda: [p for p in child_pids(proc.pid) if pid_alive(p)] or None,
            timeout_s=60,
            what="pool workers to spawn",
        )
        proc.send_signal(signal.SIGINT)
        code = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
        out, _ = proc.communicate(timeout=10)
    assert code == 130, f"expected exit 130, got {code}; output:\n{out}"
    # The BaseException handler killed the pool before the parent died.
    wait_until(
        lambda: not any(pid_alive(pid) for pid in workers),
        timeout_s=10,
        what="interrupted pool workers to die",
    )
    # The manifest flock died with its holder: a new run of the same
    # shape can acquire it immediately instead of raising LockError.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    key = cache.manifest_key(
        ("aes",), CONFIGS, scale=0.4, seed=3, periods={"aes": 1.1}
    )
    try:
        with cache.manifest_lock(key, timeout_s=1.0):
            pass
    except LockError:
        pytest.fail("manifest lock leaked past the interrupted run")
