"""Tests for global placement and legalization (repro.place)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import (
    MACRO_HALO,
    Floorplan,
    MacroSlot,
    build_floorplan,
)
from repro.place.legalizer import (
    ROW_FILL_LIMIT,
    _build_rows,
    _split_row,
    legalize,
    row_capacity_um2,
)
from repro.place.quadratic import global_place


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def placed_aes(pair):
    lib12, _ = pair
    nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
    fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
    global_place(nl, fp)
    return nl, fp, lib12


class TestGlobalPlace:
    def test_everything_placed_inside_die(self, placed_aes):
        nl, fp, _lib = placed_aes
        for inst in nl.instances.values():
            assert inst.is_placed
            assert -1e-6 <= inst.x_um <= fp.width_um
            assert -1e-6 <= inst.y_um <= fp.height_um

    def test_deterministic(self, pair):
        lib12, _ = pair
        positions = []
        for _ in range(2):
            nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
            fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
            global_place(nl, fp)
            positions.append(
                {n: (i.x_um, i.y_um) for n, i in nl.instances.items()}
            )
        assert positions[0] == positions[1]

    def test_connected_cells_are_near(self, placed_aes):
        """Placement quality: connected pairs much closer than random pairs."""
        nl, fp, _lib = placed_aes
        import itertools
        import random

        rng = random.Random(0)
        connected = []
        for net in nl.nets.values():
            if net.is_clock or net.driver is None or not net.sinks:
                continue
            a = nl.instances[net.driver[0]].center()
            b = nl.instances[net.sinks[0][0]].center()
            connected.append(abs(a[0] - b[0]) + abs(a[1] - b[1]))
        names = sorted(nl.instances)
        random_pairs = []
        for _ in range(len(connected)):
            a = nl.instances[rng.choice(names)].center()
            b = nl.instances[rng.choice(names)].center()
            random_pairs.append(abs(a[0] - b[0]) + abs(a[1] - b[1]))
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(connected) < 0.6 * mean(random_pairs)


class TestLegalizer:
    def test_no_overlaps_and_row_alignment(self, placed_aes):
        nl, fp, lib = placed_aes
        legalize(nl, fp, lib, tier=0)
        pitch = lib.cell_height_um
        rows: dict[int, list] = {}
        for inst in nl.instances.values():
            if inst.cell.is_macro:
                continue
            row = round(inst.y_um / pitch)
            assert inst.y_um == pytest.approx(row * pitch, abs=1e-6)
            rows.setdefault(row, []).append(inst)
        for members in rows.values():
            members.sort(key=lambda i: i.x_um)
            for a, b in zip(members, members[1:]):
                assert b.x_um >= a.x_um + a.cell.width_um - 1e-6

    def test_cells_stay_inside_die(self, placed_aes):
        nl, fp, lib = placed_aes
        legalize(nl, fp, lib, tier=0)
        for inst in nl.instances.values():
            assert inst.x_um >= -1e-6
            assert inst.x_um + inst.cell.width_um <= fp.width_um + 1e-6

    def test_only_requested_tier_moves(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        names = sorted(nl.instances)
        for name in names[::2]:
            nl.instances[name].tier = 1
        fp = build_floorplan(nl, {0: lib12, 1: lib12}, utilization=0.7)
        global_place(nl, fp)
        before = {n: (i.x_um, i.y_um) for n, i in nl.instances.items() if i.tier == 1}
        legalize(nl, fp, lib12, tier=0)
        after = {n: (i.x_um, i.y_um) for n, i in nl.instances.items() if i.tier == 1}
        assert before == after

    def test_overfull_tier_raises(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        fp.width_um *= 0.6  # shrink the die after placement
        with pytest.raises(PlacementError):
            legalize(nl, fp, lib12, tier=0)

    def test_macro_blockages_respected(self, pair):
        lib12, _ = pair
        nl = generate_netlist("cpu", lib12, scale=0.5, seed=3)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        legalize(nl, fp, lib12, tier=0)
        for slot in fp.macros:
            hx0, hy0 = slot.x_um, slot.y_um
            hx1 = slot.x_um + slot.width_um * (1 + MACRO_HALO)
            hy1 = slot.y_um + slot.height_um * (1 + MACRO_HALO)
            for inst in nl.instances.values():
                if inst.cell.is_macro or inst.tier != slot.tier:
                    continue
                no_overlap = (
                    inst.x_um + inst.cell.width_um <= hx0 + 1e-6
                    or inst.x_um >= hx1 - 1e-6
                    or inst.y_um + inst.cell.height_um <= hy0 + 1e-6
                    or inst.y_um >= hy1 - 1e-6
                )
                assert no_overlap, f"{inst.name} overlaps macro {slot.name}"

    def test_different_tier_row_pitches(self, pair):
        """9T and 12T tiers legalize against their own row heights."""
        lib12, lib9 = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        names = sorted(nl.instances)
        for name in names[::2]:
            inst = nl.instances[name]
            nl.rebind(name, lib9.equivalent_of(inst.cell))
            inst.tier = 1
        fp = build_floorplan(nl, {0: lib12, 1: lib9}, utilization=0.7)
        global_place(nl, fp)
        legalize(nl, fp, lib12, tier=0)
        legalize(nl, fp, lib9, tier=1)
        for inst in nl.instances.values():
            pitch = 1.2 if inst.tier == 0 else 0.9
            row = round(inst.y_um / pitch)
            assert inst.y_um == pytest.approx(row * pitch, abs=1e-6)

    def test_displacement_equals_per_cell_moves(self, pair):
        """`LegalizeStats` reports exactly the sum of |dx|+|dy| applied."""
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=5)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        movable = [
            i for i in nl.instances.values()
            if not i.fixed and not i.cell.is_macro
        ]
        before = {i.name: (i.x_um, i.y_um) for i in movable}
        stats = legalize(nl, fp, lib12, tier=0)
        moves = {
            i.name: (abs(i.x_um - before[i.name][0]),
                     abs(i.y_um - before[i.name][1]))
            for i in movable
        }
        assert stats.total_displacement_um == pytest.approx(
            sum(dx + dy for dx, dy in moves.values())
        )
        assert stats.max_displacement_um == pytest.approx(
            max(max(dx, dy) for dx, dy in moves.values())
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_legalization_preserves_cell_count_property(self, pair, seed):
        lib12, _ = pair
        nl = generate_netlist("ldpc", lib12, scale=0.2, seed=seed)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.75)
        global_place(nl, fp)
        stats = legalize(nl, fp, lib12, tier=0)
        movable = [
            i for i in nl.instances.values()
            if not i.fixed and not i.cell.is_macro
        ]
        assert stats.cells == len(movable)
        assert stats.total_displacement_um >= 0
        assert stats.max_displacement_um <= fp.width_um + fp.height_um


class _StubCell:
    is_macro = False

    def __init__(self, width):
        self.width_um = width
        self.height_um = 1.2


class _StubInst:
    def __init__(self, name, width, x, y=0.0):
        self.name = name
        self.cell = _StubCell(width)
        self.x_um = x
        self.y_um = y


def _assert_legal(nl, fp, lib, tier):
    """Every cell on a row y, inside a free segment, no overlaps."""
    pitch = lib.cell_height_um
    rows = _build_rows(fp, lib, tier)
    by_row: dict[int, list] = {}
    for inst in nl.instances.values():
        if inst.cell.is_macro or inst.fixed or inst.tier != tier:
            continue
        r = round(inst.y_um / pitch)
        assert inst.y_um == pytest.approx(r * pitch, abs=1e-6)
        _y, segs = rows[r]
        assert any(
            s0 - 1e-6 <= inst.x_um
            and inst.x_um + inst.cell.width_um <= s1 + 1e-6
            for s0, s1 in segs
        ), f"{inst.name} outside free segments of row {r}"
        by_row.setdefault(r, []).append(inst)
    for members in by_row.values():
        members.sort(key=lambda i: i.x_um)
        for a, b in zip(members, members[1:]):
            assert b.x_um >= a.x_um + a.cell.width_um - 1e-6


class TestSegmentSplit:
    def test_capacity_aware_rescue_of_stranded_cell(self):
        """The x-order greedy strands a cell at a nearly-full segment even
        though another segment has room; the capacity-aware re-split must
        find the feasible assignment instead of raising."""
        segs = [(0.0, 6.0), (20.0, 24.0)]
        a = _StubInst("a", 4.0, 0.0)
        b = _StubInst("b", 4.0, 4.5)
        c = _StubInst("c", 2.0, 8.0)
        chunks = _split_row([a, b, c], segs, y=0.0, tier=0)
        widths = [sum(i.cell.width_um for i in ch) for ch in chunks]
        assert widths[0] <= 6.0 and widths[1] <= 4.0
        assert sorted(i.name for ch in chunks for i in ch) == ["a", "b", "c"]

    def test_genuinely_oversubscribed_row_raises(self):
        segs = [(0.0, 6.0), (20.0, 24.0)]
        group = [_StubInst(f"g{i}", 4.0, 2.0 * i) for i in range(3)]
        with pytest.raises(PlacementError, match="over-subscribed"):
            _split_row(group, segs, y=0.0, tier=0)

    def test_macro_blocked_row_near_fill_limit(self, pair):
        """Regression: a macro-split row packed near `ROW_FILL_LIMIT` used
        to raise a spurious over-subscription error because the greedy
        dumped every leftover cell into the last segment."""
        lib12, _ = pair
        fp = Floorplan(
            width_um=30.0, height_um=1.3, tiers=1, utilization=0.9,
            macros=[MacroSlot("m", 12.0, 0.0, 6.0, 1.0)],
        )
        # Free segments: [0, 12] and [18.6, 30] (caps 12 / 11.4).  The
        # x-ordered greedy fills [9.12], then [5.28, 5.28], stranding the
        # trailing 2.4 even though segment 0 still has 2.88 spare.
        nl = Netlist("blocked")
        for name, drive, x in (
            ("w8", 8, 0.0), ("w4a", 4, 9.0), ("w4b", 4, 14.0), ("w1", 1, 20.0),
        ):
            inst = nl.add_instance(name, lib12.get(CellFunction.DFF, drive))
            inst.x_um = x
            inst.y_um = 0.3
        stats = legalize(nl, fp, lib12, tier=0)
        assert stats.cells == 4
        _assert_legal(nl, fp, lib12, tier=0)


class TestSpreadLeaf:
    def test_tall_region_spreads_along_y(self):
        """Leaves in a tall thin region must fan out vertically (they used
        to stack along x regardless of the region shape)."""
        import numpy as np

        from repro.place.quadratic import _spread

        xs = np.array([0.5, 0.5, 0.5])
        ys = np.array([3.0, 1.0, 2.0])
        out_x = np.zeros(3)
        out_y = np.zeros(3)
        _spread(
            ["a", "b", "c"], xs, ys, np.ones(3), (0.0, 0.0, 1.0, 10.0),
            False, out_x, out_y, np.arange(3), [],
        )
        assert np.allclose(out_x, 0.5)
        assert len(set(out_y.tolist())) == 3
        # relative y order is preserved: b (y=1) < c (y=2) < a (y=3)
        assert out_y[1] < out_y[2] < out_y[0]

    def test_wide_region_spreads_along_x(self):
        import numpy as np

        from repro.place.quadratic import _spread

        xs = np.array([1.0, 5.0])
        ys = np.array([0.5, 0.5])
        out_x = np.zeros(2)
        out_y = np.zeros(2)
        _spread(
            ["a", "b"], xs, ys, np.ones(2), (0.0, 0.0, 10.0, 1.0),
            False, out_x, out_y, np.arange(2), [],
        )
        assert np.allclose(out_y, 0.5)
        assert out_x[0] < out_x[1]


class TestFillLegalityProperty:
    POOL = None

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        fill=st.floats(0.85, 0.97),
        overfill=st.booleans(),
    )
    def test_high_fill_with_macros(self, pair, seed, fill, overfill):
        """Random placements at 85-97% fill legalize into legal rows;
        PlacementError is raised iff cell width genuinely exceeds the
        row-capacity fill limit."""
        lib12, _ = pair
        fp = Floorplan(
            width_um=30.0, height_um=12.0, tiers=1, utilization=0.9,
            macros=[MacroSlot("m", 8.0, 3.0, 6.0, 4.0)],
        )
        capacity_w = row_capacity_um2(fp, lib12, 0) / lib12.cell_height_um
        target = (fill + (0.1 if overfill else 0.0)) * capacity_w
        pool = [
            lib12.get(fn, d)
            for fn in (CellFunction.INV, CellFunction.NAND2, CellFunction.BUF)
            for d in lib12.drives_for(fn)
        ]
        rng = random.Random(seed)
        nl = Netlist("fill")
        total = 0.0
        i = 0
        while True:
            cell = rng.choice(pool)
            if total + cell.width_um > target:
                break
            inst = nl.add_instance(f"c{i}", cell)
            inst.x_um = rng.uniform(0.0, fp.width_um - cell.width_um)
            inst.y_um = rng.uniform(0.0, fp.height_um - cell.height_um)
            total += cell.width_um
            i += 1
        if total > capacity_w * ROW_FILL_LIMIT:
            with pytest.raises(PlacementError):
                legalize(nl, fp, lib12, tier=0)
        else:
            stats = legalize(nl, fp, lib12, tier=0)
            assert stats.cells == i
            _assert_legal(nl, fp, lib12, tier=0)
