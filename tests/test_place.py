"""Tests for global placement and legalization (repro.place)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import MACRO_HALO, build_floorplan
from repro.place.legalizer import legalize
from repro.place.quadratic import global_place


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def placed_aes(pair):
    lib12, _ = pair
    nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
    fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
    global_place(nl, fp)
    return nl, fp, lib12


class TestGlobalPlace:
    def test_everything_placed_inside_die(self, placed_aes):
        nl, fp, _lib = placed_aes
        for inst in nl.instances.values():
            assert inst.is_placed
            assert -1e-6 <= inst.x_um <= fp.width_um
            assert -1e-6 <= inst.y_um <= fp.height_um

    def test_deterministic(self, pair):
        lib12, _ = pair
        positions = []
        for _ in range(2):
            nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
            fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
            global_place(nl, fp)
            positions.append(
                {n: (i.x_um, i.y_um) for n, i in nl.instances.items()}
            )
        assert positions[0] == positions[1]

    def test_connected_cells_are_near(self, placed_aes):
        """Placement quality: connected pairs much closer than random pairs."""
        nl, fp, _lib = placed_aes
        import itertools
        import random

        rng = random.Random(0)
        connected = []
        for net in nl.nets.values():
            if net.is_clock or net.driver is None or not net.sinks:
                continue
            a = nl.instances[net.driver[0]].center()
            b = nl.instances[net.sinks[0][0]].center()
            connected.append(abs(a[0] - b[0]) + abs(a[1] - b[1]))
        names = sorted(nl.instances)
        random_pairs = []
        for _ in range(len(connected)):
            a = nl.instances[rng.choice(names)].center()
            b = nl.instances[rng.choice(names)].center()
            random_pairs.append(abs(a[0] - b[0]) + abs(a[1] - b[1]))
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(connected) < 0.6 * mean(random_pairs)


class TestLegalizer:
    def test_no_overlaps_and_row_alignment(self, placed_aes):
        nl, fp, lib = placed_aes
        legalize(nl, fp, lib, tier=0)
        pitch = lib.cell_height_um
        rows: dict[int, list] = {}
        for inst in nl.instances.values():
            if inst.cell.is_macro:
                continue
            row = round(inst.y_um / pitch)
            assert inst.y_um == pytest.approx(row * pitch, abs=1e-6)
            rows.setdefault(row, []).append(inst)
        for members in rows.values():
            members.sort(key=lambda i: i.x_um)
            for a, b in zip(members, members[1:]):
                assert b.x_um >= a.x_um + a.cell.width_um - 1e-6

    def test_cells_stay_inside_die(self, placed_aes):
        nl, fp, lib = placed_aes
        legalize(nl, fp, lib, tier=0)
        for inst in nl.instances.values():
            assert inst.x_um >= -1e-6
            assert inst.x_um + inst.cell.width_um <= fp.width_um + 1e-6

    def test_only_requested_tier_moves(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        names = sorted(nl.instances)
        for name in names[::2]:
            nl.instances[name].tier = 1
        fp = build_floorplan(nl, {0: lib12, 1: lib12}, utilization=0.7)
        global_place(nl, fp)
        before = {n: (i.x_um, i.y_um) for n, i in nl.instances.items() if i.tier == 1}
        legalize(nl, fp, lib12, tier=0)
        after = {n: (i.x_um, i.y_um) for n, i in nl.instances.items() if i.tier == 1}
        assert before == after

    def test_overfull_tier_raises(self, pair):
        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        fp.width_um *= 0.6  # shrink the die after placement
        with pytest.raises(PlacementError):
            legalize(nl, fp, lib12, tier=0)

    def test_macro_blockages_respected(self, pair):
        lib12, _ = pair
        nl = generate_netlist("cpu", lib12, scale=0.5, seed=3)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        legalize(nl, fp, lib12, tier=0)
        for slot in fp.macros:
            hx0, hy0 = slot.x_um, slot.y_um
            hx1 = slot.x_um + slot.width_um * (1 + MACRO_HALO)
            hy1 = slot.y_um + slot.height_um * (1 + MACRO_HALO)
            for inst in nl.instances.values():
                if inst.cell.is_macro or inst.tier != slot.tier:
                    continue
                no_overlap = (
                    inst.x_um + inst.cell.width_um <= hx0 + 1e-6
                    or inst.x_um >= hx1 - 1e-6
                    or inst.y_um + inst.cell.height_um <= hy0 + 1e-6
                    or inst.y_um >= hy1 - 1e-6
                )
                assert no_overlap, f"{inst.name} overlaps macro {slot.name}"

    def test_different_tier_row_pitches(self, pair):
        """9T and 12T tiers legalize against their own row heights."""
        lib12, lib9 = pair
        nl = generate_netlist("aes", lib12, scale=0.3, seed=3)
        names = sorted(nl.instances)
        for name in names[::2]:
            inst = nl.instances[name]
            nl.rebind(name, lib9.equivalent_of(inst.cell))
            inst.tier = 1
        fp = build_floorplan(nl, {0: lib12, 1: lib9}, utilization=0.7)
        global_place(nl, fp)
        legalize(nl, fp, lib12, tier=0)
        legalize(nl, fp, lib9, tier=1)
        for inst in nl.instances.values():
            pitch = 1.2 if inst.tier == 0 else 0.9
            row = round(inst.y_um / pitch)
            assert inst.y_um == pytest.approx(row * pitch, abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_legalization_preserves_cell_count_property(self, pair, seed):
        lib12, _ = pair
        nl = generate_netlist("ldpc", lib12, scale=0.2, seed=seed)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.75)
        global_place(nl, fp)
        stats = legalize(nl, fp, lib12, tier=0)
        movable = [
            i for i in nl.instances.values()
            if not i.fixed and not i.cell.is_macro
        ]
        assert stats.cells == len(movable)
        assert stats.total_displacement_um >= 0
        assert stats.max_displacement_um <= fp.width_um + fp.height_um
