"""Tests for netlist statistics (repro.netlist.stats)."""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_twelve_track_library
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist
from repro.netlist.stats import compute_stats, logic_depth_histogram


@pytest.fixture(scope="module")
def lib():
    return make_twelve_track_library()


def chain_netlist(lib, depth):
    nl = Netlist("chain")
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nl.add_port("din", PortDirection.INPUT)
    prev = "din"
    for i in range(depth):
        nl.add_instance(f"g{i}", lib.get(CellFunction.INV, 1))
        nl.add_net(f"n{i}")
        nl.connect(prev, f"g{i}", "A")
        nl.connect(f"n{i}", f"g{i}", "Y")
        prev = f"n{i}"
    return nl


class TestDepthHistogram:
    def test_chain_depth_exact(self, lib):
        hist = logic_depth_histogram(chain_netlist(lib, 7))
        assert hist == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1}

    def test_sequential_cells_reset_depth(self, lib):
        nl = chain_netlist(lib, 3)
        # add a FF after the chain, then more inverters: depth restarts
        nl.add_instance("ff", lib.get(CellFunction.DFF, 1))
        nl.connect("n2", "ff", "D")
        nl.connect("clk", "ff", "CK")
        nl.add_net("q")
        nl.connect("q", "ff", "Q")
        nl.add_instance("g_after", lib.get(CellFunction.INV, 1))
        nl.add_net("n_after")
        nl.connect("q", "g_after", "A")
        nl.connect("n_after", "g_after", "Y")
        hist = logic_depth_histogram(nl)
        # g_after restarts at depth 1 (its driver is sequential)
        assert hist[1] == 2

    def test_empty_netlist(self):
        nl = Netlist("empty")
        assert logic_depth_histogram(nl) == {}


class TestComputeStats:
    def test_chain_stats(self, lib):
        stats = compute_stats(chain_netlist(lib, 5))
        assert stats.instances == 5
        assert stats.max_logic_depth == 5
        assert stats.mean_logic_depth == pytest.approx(3.0)
        assert stats.mean_fanout == pytest.approx(5 / 6)  # last net dangles
        assert stats.max_fanout == 1
        assert stats.sequential == 0

    def test_generated_design_stats_sane(self, lib):
        nl = generate_netlist("cpu", lib, scale=0.3, seed=9)
        stats = compute_stats(nl)
        assert stats.instances == len(nl.instances)
        assert stats.macros >= 1
        assert stats.sequential > 10
        assert 1.0 < stats.mean_fanout < 5.0
        assert stats.max_logic_depth >= 15  # the mul block
        assert stats.pins_per_net > 1.5
        assert stats.wire_per_gate > 0

    def test_stats_deterministic(self, lib):
        a = compute_stats(generate_netlist("ldpc", lib, scale=0.3, seed=9))
        b = compute_stats(generate_netlist("ldpc", lib, scale=0.3, seed=9))
        assert a == b
