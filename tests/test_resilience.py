"""Tests for the fault-tolerant evaluation engine.

Driven end to end by the deterministic fault-injection harness
(:mod:`repro.experiments.faults`): worker crashes, hangs past the
timeout, corrupt cache writes and deterministically failing cells are
*injected* and every recovery path -- retry, pool rebuild, quarantine,
partial-work carry, resume -- is asserted against a fault-free run.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import PlacementError, ReproError
from repro.experiments import cache, faults
from repro.experiments.faults import (
    FaultInjected,
    TransientFaultInjected,
    inject,
    parse_spec,
)
from repro.experiments.resilience import (
    DETERMINISTIC,
    TRANSIENT,
    FailedCell,
    RetryPolicy,
    WorkerTaskError,
    call_with_retry,
    classify,
)
from repro.experiments.runner import (
    clear_memory_caches,
    run_configuration,
    run_matrix,
)
from repro.experiments.telemetry import get_telemetry, reset_telemetry

#: Zero-backoff policy so retry tests do not sleep.
FAST = RetryPolicy(max_retries=2, backoff_s=0.0, keep_going=True)


@pytest.fixture
def fresh_engine(monkeypatch, tmp_path):
    """Cold caches, private cache/fault-state dirs, zeroed telemetry."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path / "fault-state"))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_fault_state()
    clear_memory_caches()
    reset_telemetry()
    yield
    faults.reset_fault_state()
    clear_memory_caches()
    reset_telemetry()


def rows_of(matrix):
    """Byte-exact serialized view of every completed cell."""
    return {
        key: json.dumps(result.to_dict(), sort_keys=True)
        for key, result in matrix.results.items()
    }


# ----------------------------------------------------------------------
# fault harness
# ----------------------------------------------------------------------
class TestFaultSpecParsing:
    def test_full_entry(self):
        (spec,) = parse_spec(
            "site=worker,design=aes,config=3D_HET,kind=hang,"
            "times=3,after=1,seconds=2.5,p=0.5,seed=9"
        )
        assert spec.site == "worker"
        assert spec.kind == "hang"
        assert spec.match == {"design": "aes", "config": "3D_HET"}
        assert (spec.times, spec.after) == (3, 1)
        assert spec.seconds == pytest.approx(2.5)
        assert (spec.p, spec.seed) == (0.5, 9)

    def test_multiple_entries_indexed(self):
        specs = parse_spec("site=cell,kind=raise;site=worker,kind=exit")
        assert [s.index for s in specs] == [0, 1]
        assert [s.kind for s in specs] == ["raise", "exit"]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            parse_spec("site=cell,kind=explode")

    def test_missing_site_rejected(self):
        with pytest.raises(ValueError, match="missing site"):
            parse_spec("kind=raise")

    def test_non_kv_field_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_spec("site=cell,kind=raise,whatever")


class TestInject:
    def test_noop_without_env(self, fresh_engine):
        with inject("cell", design="aes"):
            ran = True
        assert ran

    def test_raise_matches_filters(self, fresh_engine, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=cell,design=aes,kind=raise,times=0"
        )
        with inject("cell", design="ldpc"):
            pass  # filter mismatch: no fire
        with pytest.raises(FaultInjected):
            with inject("cell", design="aes"):
                pass

    def test_injected_error_taxonomy(self):
        assert issubclass(FaultInjected, ReproError)
        assert issubclass(TransientFaultInjected, OSError)
        assert not issubclass(TransientFaultInjected, ReproError)

    def test_times_limits_fires(self, fresh_engine, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "site=cell,kind=raise,times=2")
        fired = 0
        for _ in range(5):
            try:
                with inject("cell"):
                    pass
            except FaultInjected:
                fired += 1
        assert fired == 2

    def test_after_skips_first_hits(self, fresh_engine, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=cell,kind=raise,after=2,times=1"
        )
        outcomes = []
        for _ in range(4):
            try:
                with inject("cell"):
                    outcomes.append("ok")
            except FaultInjected:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "ok"]

    def test_state_dir_counts_across_processes(self, fresh_engine, monkeypatch):
        """Claim files make ``times`` global: a 'new process' (reset
        in-process state) still sees the budget as spent."""
        monkeypatch.setenv("REPRO_FAULTS", "site=cell,kind=raise,times=1")
        with pytest.raises(FaultInjected):
            with inject("cell"):
                pass
        faults.reset_fault_state()  # simulate a fresh worker process
        with inject("cell"):
            ran = True
        assert ran

    def test_corrupt_mangles_named_path_after_block(
        self, fresh_engine, monkeypatch, tmp_path
    ):
        target = tmp_path / "entry.json"
        monkeypatch.setenv("REPRO_FAULTS", "site=cache_write,kind=corrupt")
        with inject("cache_write", entry="result", path=str(target)):
            target.write_text('{"payload": {}}')
        assert "corrupted by fault injection" in target.read_text()

    def test_probabilistic_firing_is_seeded(self, fresh_engine, monkeypatch):
        # Per-process counting: a state dir would (correctly) keep the
        # hit counter climbing across the two runs compared below.
        monkeypatch.delenv("REPRO_FAULTS_STATE")
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=cell,kind=raise,times=0,p=0.5,seed=3"
        )

        def pattern():
            fired = []
            for _ in range(16):
                try:
                    with inject("cell"):
                        fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        first = pattern()
        faults.reset_fault_state()
        assert pattern() == first
        assert any(first) and not all(first)


# ----------------------------------------------------------------------
# error taxonomy and policy
# ----------------------------------------------------------------------
class TestClassification:
    def test_repro_errors_are_deterministic(self):
        assert classify(PlacementError("x")) == DETERMINISTIC
        assert classify(FaultInjected("x")) == DETERMINISTIC

    def test_os_level_errors_are_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify(OSError("x")) == TRANSIENT
        assert classify(BrokenProcessPool("x")) == TRANSIENT
        assert classify(pickle.PicklingError("x")) == TRANSIENT
        assert classify(TimeoutError("x")) == TRANSIENT

    def test_arbitrary_bugs_are_deterministic(self):
        assert classify(ValueError("x")) == DETERMINISTIC

    def test_worker_error_carries_its_own_classification(self):
        transient = WorkerTaskError("flow", "aes", "3D_HET", "OSError", "m", True)
        deterministic = WorkerTaskError(
            "flow", "aes", "3D_HET", "PlacementError", "m", False
        )
        assert classify(transient) == TRANSIENT
        assert classify(deterministic) == DETERMINISTIC

    def test_wrap_classifies_flow_oserror_as_transient_not_pool(self):
        wrapped = WorkerTaskError.wrap(
            OSError("disk hiccup"), stage="flow", design="aes", config="2D_9T"
        )
        assert wrapped.transient is True
        assert wrapped.error_type == "OSError"
        # ...but an ImportError from flow code is a bug, not weather.
        wrapped = WorkerTaskError.wrap(
            ImportError("no such module"), stage="flow", design="aes"
        )
        assert wrapped.transient is False

    def test_worker_error_pickle_round_trip(self):
        err = WorkerTaskError("flow", "aes", "3D_HET", "OSError", "m", True)
        back = pickle.loads(pickle.dumps(err))
        assert (back.stage, back.design, back.config) == ("flow", "aes", "3D_HET")
        assert back.transient is True
        assert "stage=flow" in str(back)


class TestRetryPolicy:
    def test_backoff_caps(self):
        policy = RetryPolicy(
            backoff_s=1.0, backoff_factor=2.0, max_backoff_s=3.0
        )
        assert [policy.backoff(i) for i in range(4)] == [1.0, 2.0, 3.0, 3.0]

    def test_zero_backoff(self):
        assert RetryPolicy(backoff_s=0.0).backoff(5) == 0.0

    def test_with_overrides(self):
        policy = RetryPolicy()
        tuned = policy.with_overrides(
            keep_going=True, max_retries=7, timeout_s=1.5
        )
        assert (tuned.keep_going, tuned.max_retries, tuned.timeout_s) == (
            True, 7, 1.5,
        )
        assert policy.with_overrides() is policy


class TestFailedCell:
    def test_dict_round_trip(self):
        cell = FailedCell(
            "aes", "3D_HET", "flow", DETERMINISTIC, "PlacementError",
            "too full", 2,
        )
        assert FailedCell.from_dict(cell.to_dict()) == cell

    def test_raisable_reconstructs_repro_type(self):
        cell = FailedCell(
            "aes", "3D_HET", "flow", DETERMINISTIC, "PlacementError",
            "too full", 1,
        )
        exc = cell.raisable()
        assert isinstance(exc, PlacementError)
        assert "too full" in str(exc) and "design=aes" in str(exc)

    def test_raisable_prefers_original_exception(self):
        original = ValueError("boom")
        cell = FailedCell(
            "aes", "*", "flow", DETERMINISTIC, "ValueError", "boom", 1,
            exception=original,
        )
        assert cell.raisable() is original


class TestCallWithRetry:
    def test_transient_retried_then_succeeds(self, fresh_engine):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("weather")
            return 42

        value, failure = call_with_retry(
            flaky, policy=FAST, stage="flow", design="aes"
        )
        assert (value, failure) == (42, None)
        assert len(calls) == 3
        assert get_telemetry().retries == 2

    def test_deterministic_never_retried(self, fresh_engine):
        calls = []

        def bad():
            calls.append(1)
            raise PlacementError("overfull")

        value, failure = call_with_retry(
            bad, policy=FAST, stage="flow", design="aes", config="3D_HET"
        )
        assert value is None
        assert failure.kind == DETERMINISTIC
        assert failure.attempts == 1 and len(calls) == 1
        assert isinstance(failure.exception, PlacementError)
        assert "design=aes" in str(failure.exception)

    def test_retries_exhausted(self, fresh_engine):
        def always():
            raise OSError("forever")

        value, failure = call_with_retry(
            always, policy=FAST, stage="flow", design="aes"
        )
        assert value is None
        assert failure.kind == TRANSIENT
        assert failure.attempts == FAST.max_retries + 1


# ----------------------------------------------------------------------
# the matrix survives injected faults (serial path)
# ----------------------------------------------------------------------
class TestSerialQuarantine:
    def test_keep_going_quarantines_exactly_the_failing_cell(
        self, fresh_engine, monkeypatch, tmp_path
    ):
        configs = ("2D_12T", "3D_9T")
        clean = run_matrix(
            designs=("aes",), config_names=configs, scale=0.2, seed=80,
            target_periods={"aes": 0.9}, policy=FAST,
        )
        # A brand-new engine with a deterministic fault on one cell.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-faulted"))
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_9T,kind=raise,times=0",
        )
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()
        partial = run_matrix(
            designs=("aes",), config_names=configs, scale=0.2, seed=80,
            target_periods={"aes": 0.9}, policy=FAST,
        )
        assert set(partial.failed) == {("aes", "3D_9T")}
        assert not partial.ok
        cell = partial.failed[("aes", "3D_9T")]
        assert cell.kind == DETERMINISTIC
        assert cell.error_type == "FaultInjected"
        assert get_telemetry().quarantined == 1
        # Every other cell is byte-identical to the fault-free run.
        good = rows_of(partial)
        assert set(good) == {("aes", "2D_12T")}
        assert good[("aes", "2D_12T")] == rows_of(clean)[("aes", "2D_12T")]

    def test_fail_fast_raises_original_with_context(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=cell,design=aes,kind=raise,times=0"
        )
        with pytest.raises(FaultInjected) as excinfo:
            run_matrix(
                designs=("aes",), config_names=("2D_12T",), scale=0.2,
                seed=81, target_periods={"aes": 0.9},
            )
        assert "design=aes" in str(excinfo.value)
        assert "config=2D_12T" in str(excinfo.value)

    def test_transient_cell_fault_is_retried(self, fresh_engine, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=2D_12T,kind=raise_transient,times=1",
        )
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T",), scale=0.2, seed=82,
            target_periods={"aes": 0.9}, policy=FAST,
        )
        assert matrix.ok
        telemetry = get_telemetry()
        assert telemetry.retries == 1
        assert telemetry.flows_run == 1

    def test_period_search_failure_quarantines_design_row(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=period_search,design=aes,kind=raise,times=0"
        )
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T", "3D_9T"), scale=0.2,
            seed=83, policy=FAST,
        )
        assert not matrix.ok
        assert set(matrix.failed_periods) == {"aes"}
        assert matrix.failed_periods["aes"].stage == "period_search"
        assert not matrix.results  # the whole row is blocked


# ----------------------------------------------------------------------
# the matrix survives injected faults (parallel path)
# ----------------------------------------------------------------------
class TestParallelResilience:
    CONFIGS = ("2D_12T", "3D_9T", "3D_HET")

    def test_crash_hang_corruption_and_bad_cell_all_recovered(
        self, fresh_engine, monkeypatch, tmp_path
    ):
        """The headline acceptance scenario: a worker crash, a hang past
        the timeout, a corrupted cache write and one deterministically
        failing cell -- in a single keep-going parallel run.  Exactly the
        bad cell is quarantined; every other result is byte-identical to
        a fault-free serial run."""
        clean = run_matrix(
            designs=("aes",), config_names=self.CONFIGS, scale=0.2, seed=85,
            target_periods={"aes": 0.9}, policy=FAST,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-faulted"))
        monkeypatch.setenv(
            "REPRO_FAULTS",
            # one worker crash...
            "site=worker,design=aes,config=3D_9T,kind=exit,times=1;"
            # ...one hang long past the timeout...
            "site=worker,design=aes,config=2D_12T,kind=hang,seconds=60,times=1;"
            # ...one corrupted result write...
            "site=cache_write,entry=result,kind=corrupt,times=1;"
            # ...and one deterministically bad cell.
            "site=cell,design=aes,config=3D_HET,kind=raise,times=0",
        )
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()
        policy = RetryPolicy(
            max_retries=3, backoff_s=0.0, timeout_s=10.0, keep_going=True
        )
        partial = run_matrix(
            designs=("aes",), config_names=self.CONFIGS, scale=0.2, seed=85,
            jobs=3, target_periods={"aes": 0.9}, policy=policy,
        )
        assert set(partial.failed) == {("aes", "3D_HET")}
        assert partial.failed[("aes", "3D_HET")].kind == DETERMINISTIC
        good, reference = rows_of(partial), rows_of(clean)
        assert set(good) == {("aes", "2D_12T"), ("aes", "3D_9T")}
        for key, row in good.items():
            assert row == reference[key]
        telemetry = get_telemetry()
        assert telemetry.quarantined == 1
        assert telemetry.retries >= 1
        assert telemetry.pool_rebuilds >= 1

    def test_completed_cells_survive_pool_death(
        self, fresh_engine, monkeypatch
    ):
        """Satellite: pool death mid-wave no longer discards completed
        futures.  With the disk cache off, the only way to reach
        flows_run == n_cells after a crash is to carry the completed
        results forward instead of rerunning them."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=worker,design=aes,config=3D_9T,kind=exit,times=1",
        )
        matrix = run_matrix(
            designs=("aes",), config_names=self.CONFIGS, scale=0.2, seed=86,
            jobs=2, target_periods={"aes": 0.9}, policy=FAST,
        )
        assert matrix.ok
        telemetry = get_telemetry()
        assert telemetry.flows_run == len(self.CONFIGS)
        assert telemetry.pool_rebuilds >= 1

    def test_flow_raised_transient_error_does_not_rebuild_pool(
        self, fresh_engine, monkeypatch
    ):
        """Satellite: a flow-raised OSError inside a worker is retried as
        a job failure -- it is not mistaken for pool breakage (no pool
        rebuild, no serial fallback)."""
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=worker,design=aes,config=2D_12T,kind=raise_transient,times=1",
        )
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T", "3D_9T"), scale=0.2,
            seed=87, jobs=2, target_periods={"aes": 0.9}, policy=FAST,
        )
        assert matrix.ok
        telemetry = get_telemetry()
        assert telemetry.retries == 1
        assert telemetry.pool_rebuilds == 0

    def test_deterministic_worker_failure_not_retried(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_9T,kind=raise,times=0",
        )
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T", "3D_9T"), scale=0.2,
            seed=88, jobs=2, target_periods={"aes": 0.9}, policy=FAST,
        )
        assert set(matrix.failed) == {("aes", "3D_9T")}
        assert matrix.failed[("aes", "3D_9T")].attempts == 1
        assert get_telemetry().retries == 0

    def test_hang_past_timeout_is_killed_and_retried(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=worker,design=aes,config=2D_12T,kind=hang,"
            "seconds=60,times=1",
        )
        policy = RetryPolicy(
            max_retries=2, backoff_s=0.0, timeout_s=6.0, keep_going=True
        )
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T",), scale=0.2, seed=89,
            jobs=2, target_periods={"aes": 0.9}, policy=policy,
        )
        assert matrix.ok
        assert get_telemetry().timeouts == 1


# ----------------------------------------------------------------------
# run-manifest and resume
# ----------------------------------------------------------------------
class TestResume:
    def test_interrupted_matrix_resumes_with_zero_redundant_flows(
        self, fresh_engine, monkeypatch
    ):
        """The acceptance criterion: after an interrupted run, resuming
        performs zero flow runs (and zero period probes) for everything
        that already completed -- telemetry-enforced."""
        configs = ("2D_12T", "3D_9T", "3D_HET")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_HET,kind=raise,times=1",
        )
        with pytest.raises(FaultInjected):
            run_matrix(
                designs=("aes",), config_names=configs, scale=0.2, seed=90,
            )
        interrupted = get_telemetry()
        assert interrupted.flows_run > 0
        # New process: faults gone, memory cold, disk cache + manifest warm.
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()
        matrix = run_matrix(
            designs=("aes",), config_names=configs, scale=0.2, seed=90,
            resume=True,
        )
        assert matrix.ok
        telemetry = get_telemetry()
        assert telemetry.period_probes == 0  # periods came from the manifest
        assert telemetry.flows_run == 1  # only the previously-failed cell
        assert telemetry.disk_hits >= 2  # completed cells reloaded from disk

    def test_manifest_records_progress_and_failures(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_9T,kind=raise,times=0",
        )
        run_matrix(
            designs=("aes",), config_names=("2D_12T", "3D_9T"), scale=0.2,
            seed=91, target_periods={"aes": 0.9}, policy=FAST,
        )
        key = cache.manifest_key(
            ("aes",), ("2D_12T", "3D_9T"), scale=0.2, seed=91,
            periods={"aes": 0.9},
        )
        manifest = cache.load_manifest(key)
        assert manifest is not None
        assert manifest["completed"] == [["aes", "2D_12T"]]
        assert manifest["complete"] is False
        (failed,) = manifest["failed"]
        assert failed["config"] == "3D_9T"
        assert failed["error_type"] == "FaultInjected"

    def test_complete_run_marks_manifest_complete(self, fresh_engine):
        run_matrix(
            designs=("aes",), config_names=("2D_12T",), scale=0.2, seed=92,
            target_periods={"aes": 0.9},
        )
        key = cache.manifest_key(
            ("aes",), ("2D_12T",), scale=0.2, seed=92, periods={"aes": 0.9}
        )
        manifest = cache.load_manifest(key)
        assert manifest["complete"] is True

    def test_resume_without_manifest_starts_cold(self, fresh_engine):
        matrix = run_matrix(
            designs=("aes",), config_names=("2D_12T",), scale=0.2, seed=93,
            target_periods={"aes": 0.9}, resume=True,
        )
        assert matrix.ok


# ----------------------------------------------------------------------
# corrupt cache writes
# ----------------------------------------------------------------------
class TestCorruptCacheWrite:
    def test_corrupted_entry_is_recovered_on_next_read(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=cache_write,entry=result,kind=corrupt,times=1"
        )
        _d, cold = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=94
        )
        # The write was corrupted; a fresh process must treat it as a
        # miss, rerun the flow, and repair the entry.
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_fault_state()
        clear_memory_caches()
        reset_telemetry()
        _d, warm = run_configuration(
            "aes", "2D_12T", period_ns=0.9, scale=0.2, seed=94
        )
        assert get_telemetry().flows_run == 1  # recomputed, did not crash
        assert warm.row() == cold.row()
        clear_memory_caches()
        reset_telemetry()
        run_configuration("aes", "2D_12T", period_ns=0.9, scale=0.2, seed=94)
        assert get_telemetry().flows_run == 0  # entry healed


class TestMatrixFailureReporting:
    def test_failure_summary_table(self):
        from repro.experiments.runner import EvaluationMatrix

        matrix = EvaluationMatrix(scale=0.2, seed=0)
        matrix.failed[("aes", "3D_HET")] = FailedCell(
            "aes", "3D_HET", "flow", DETERMINISTIC, "PlacementError",
            "overfull", 2,
        )
        matrix.failed_periods["cpu"] = FailedCell(
            "cpu", "*", "period_search", TRANSIENT, "TimeoutError", "hung", 3
        )
        text = matrix.failure_summary()
        assert "aes" in text and "3D_HET" in text and "PlacementError" in text
        assert "cpu" in text and "period_search" in text
        assert not matrix.ok

    def test_empty_summary_when_ok(self):
        from repro.experiments.runner import EvaluationMatrix

        matrix = EvaluationMatrix(scale=0.2, seed=0)
        assert matrix.ok
        assert matrix.failure_summary() == ""
