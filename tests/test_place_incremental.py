"""Incremental placement (:class:`PlacementSession`): equivalence, behaviour.

The contract under test is exact equivalence: after any sequence of
flow-style edits (resize, clone, buffer insertion, tier move, nudge),
a session's ``legalize_all`` / ``hpwl_um`` / ``congestion`` must be
byte-identical to a session that recomputes everything from scratch
(``force_full=True``, the ``REPRO_PLACE=full`` CI mode).  A Hypothesis
property drives random edit sequences against two independently built
copies of the same design -- one served incrementally, one full -- and
compares positions, HPWL, and the congestion demand grid bit for bit
after every step.
"""

import numpy as np
import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import build_floorplan
from repro.place.incremental import PlacementSession, PlaceSessionStats
from repro.place.quadratic import global_place

LIB12, LIB9 = make_library_pair()
LIBS = {LIB12.name: LIB12, LIB9.name: LIB9}


def build_design(seed: int, scale: float = 0.12):
    """One placed two-tier aes instance; deterministic, so building it
    twice yields bit-identical twins."""
    nl = generate_netlist("aes", LIB12, scale=scale, seed=seed)
    for name in sorted(nl.instances)[::2]:
        inst = nl.instances[name]
        if inst.cell.is_macro:
            continue
        nl.rebind(name, LIB9.equivalent_of(inst.cell))
        inst.tier = 1
    tier_libs = {0: LIB12, 1: LIB9}
    fp = build_floorplan(nl, tier_libs, utilization=0.7)
    global_place(nl, fp)
    return nl, fp, tier_libs


# ----------------------------------------------------------------------
# flow-style edits; each returns the instance names it disturbed
# (the touch_placement contract), or None when not applicable
# ----------------------------------------------------------------------
def _comb_instances(nl):
    return [
        i
        for i in nl.instances.values()
        if not i.cell.is_sequential and not i.cell.is_macro and not i.fixed
    ]


def edit_resize(nl, pick):
    cands = _comb_instances(nl)
    if not cands:
        return None
    inst = cands[pick % len(cands)]
    lib = LIBS[inst.cell.library_name]
    new_cell = lib.upsize(inst.cell) or lib.downsize(inst.cell)
    if new_cell is None:
        return None
    nl.rebind(inst.name, new_cell)
    return [inst.name]


def edit_clone(nl, pick):
    cands = [
        i
        for i in _comb_instances(nl)
        if i.net_of(i.cell.output_pin) is not None
        and len(nl.nets[i.net_of(i.cell.output_pin)].sinks) >= 2
    ]
    if not cands:
        return None
    inst = cands[pick % len(cands)]
    out_pin = inst.cell.output_pin
    out_net = inst.net_of(out_pin)
    moved = list(nl.nets[out_net].sinks)[: len(nl.nets[out_net].sinks) // 2]
    clone_name = nl.unique_name(inst.name + "_cl")
    clone = nl.add_instance(clone_name, inst.cell, block=inst.block)
    clone.tier = inst.tier
    clone.x_um = inst.x_um
    clone.y_um = inst.y_um
    for pin in inst.cell.input_pins:
        in_net = inst.net_of(pin)
        if in_net is not None:
            nl.connect(in_net, clone_name, pin)
    new_net = nl.add_net(nl.unique_name(out_net + "_cl"))
    nl.connect(new_net.name, clone_name, out_pin)
    for sink_name, pin in moved:
        nl.disconnect(sink_name, pin)
        nl.connect(new_net.name, sink_name, pin)
    return [inst.name, clone_name]


def edit_buffer(nl, pick):
    cands = [
        n
        for n in nl.nets.values()
        if not n.is_clock and n.driver is not None and len(n.sinks) >= 2
    ]
    if not cands:
        return None
    net = cands[pick % len(cands)]
    driver = nl.instances[net.driver[0]]
    lib = LIBS[driver.cell.library_name]
    buf_cell = lib.get(CellFunction.BUF, lib.drives_for(CellFunction.BUF)[0])
    moved = list(net.sinks)[1:]
    buf_name = nl.unique_name("tbuf")
    buf = nl.add_instance(buf_name, buf_cell, block=driver.block)
    buf.tier = driver.tier
    buf.x_um = driver.x_um
    buf.y_um = driver.y_um
    new_net = nl.add_net(nl.unique_name("tbufn"))
    nl.connect(net.name, buf_name, "A")
    nl.connect(new_net.name, buf_name, "Y")
    for sink_name, pin in moved:
        nl.disconnect(sink_name, pin)
        nl.connect(new_net.name, sink_name, pin)
    return [buf_name]


def edit_tier_move(nl, pick):
    cands = _comb_instances(nl)
    if not cands:
        return None
    inst = cands[pick % len(cands)]
    target = LIB9 if inst.cell.library_name == LIB12.name else LIB12
    inst.tier = 1 - (inst.tier or 0)
    nl.rebind(inst.name, target.equivalent_of(inst.cell))
    return [inst.name]


def edit_nudge(nl, pick):
    """A raw position change (what the ECO's rebind-and-replace does)."""
    cands = _comb_instances(nl)
    if not cands:
        return None
    inst = cands[pick % len(cands)]
    inst.x_um = inst.x_um + ((pick % 7) - 3) * 1.7
    inst.y_um = inst.y_um + ((pick % 5) - 2) * 1.3
    return [inst.name]


EDITS = [edit_resize, edit_clone, edit_buffer, edit_tier_move, edit_nudge]


def assert_designs_identical(nl_a, nl_b):
    assert sorted(nl_a.instances) == sorted(nl_b.instances)
    for name, a in nl_a.instances.items():
        b = nl_b.instances[name]
        assert (a.x_um, a.y_um, a.tier) == (b.x_um, b.y_um, b.tier), name


def assert_sessions_equal(inc, full):
    assert_designs_identical(inc.netlist, full.netlist)
    assert inc.hpwl_um() == full.hpwl_um()
    ci = inc.congestion()
    cf = full.congestion()
    assert ci.capacity_um == cf.capacity_um
    assert np.array_equal(ci.demand, cf.demand)


# ----------------------------------------------------------------------
# Hypothesis property: random edit sequences stay byte-identical
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


class TestEquivalenceProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        netlist_seed=st.integers(0, 3),
        ops=st.lists(
            st.tuples(st.integers(0, len(EDITS) - 1), st.integers(0, 10_000)),
            min_size=1,
            max_size=8,
        ),
    )
    def test_random_edits_match_full_recompute(self, netlist_seed, ops):
        nl_i, fp_i, libs = build_design(netlist_seed)
        nl_f, fp_f, _ = build_design(netlist_seed)
        inc = PlacementSession(nl_i, fp_i, libs, force_full=False)
        full = PlacementSession(nl_f, fp_f, libs, force_full=True)
        inc.legalize_all()
        full.legalize_all()
        assert_sessions_equal(inc, full)
        for op_idx, pick in ops:
            touched = EDITS[op_idx](nl_i, pick)
            EDITS[op_idx](nl_f, pick)
            if touched:
                for name in touched:
                    inc.dirty_cell(name)
            inc.legalize_all()
            full.legalize_all()
            assert_sessions_equal(inc, full)
        assert full.stats.incremental_runs == 0
        assert inc.stats.runs > 0


# ----------------------------------------------------------------------
# deterministic behaviour tests
# ----------------------------------------------------------------------
class TestSessionBehaviour:
    def test_small_edit_goes_incremental(self):
        nl, fp, libs = build_design(1)
        session = PlacementSession(nl, fp, libs)
        session.legalize_all()
        assert session.stats.full_runs >= 1
        name = _comb_instances(nl)[0].name
        nl.rebind(name, LIBS[nl.instances[name].cell.library_name].upsize(
            nl.instances[name].cell
        ) or nl.instances[name].cell)
        session.dirty_cell(name)
        session.legalize_all()
        assert session.stats.incremental_runs == 1
        assert 0 < session.stats.last_disturbed_fraction < 0.05

    def test_kill_switch_forces_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACE", "full")
        nl, fp, libs = build_design(1)
        session = PlacementSession(nl, fp, libs)
        session.legalize_all()
        session.dirty_cell(_comb_instances(nl)[0].name)
        session.legalize_all()
        assert session.stats.incremental_runs == 0
        assert session.stats.full_runs >= 2

    def test_threshold_zero_always_falls_back_to_full(self):
        nl, fp, libs = build_design(1)
        session = PlacementSession(nl, fp, libs, full_fraction=0.0)
        session.legalize_all()
        session.dirty_cell(_comb_instances(nl)[0].name)
        session.legalize_all()
        assert session.stats.full_runs == 2
        assert session.stats.incremental_runs == 0

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACE_THRESHOLD", "0.07")
        nl, fp, libs = build_design(1)
        session = PlacementSession(nl, fp, libs)
        assert session.full_fraction == 0.07

    def test_hpwl_matches_metrics(self):
        from repro.obs.metrics import hpwl_um

        nl, fp, libs = build_design(2)
        session = PlacementSession(nl, fp, libs)
        session.legalize_all()
        assert session.hpwl_um() == hpwl_um(nl)
        edit_nudge(nl, 123)
        session.invalidate_all()
        assert session.hpwl_um() == hpwl_um(nl)

    def test_congestion_nondefault_bins_delegates(self):
        from repro.route.congestion import analyze_congestion

        nl, fp, libs = build_design(2)
        session = PlacementSession(nl, fp, libs)
        session.legalize_all()
        ref = analyze_congestion(
            nl, libs[0], fp.width_um, fp.height_um, len(libs), bins=4
        )
        got = session.congestion(bins=4)
        assert np.array_equal(got.demand, ref.demand)

    def test_stats_runs_property(self):
        stats = PlaceSessionStats(full_runs=2, incremental_runs=3)
        assert stats.runs == 5


class TestDesignIntegration:
    def test_design_session_is_cached_and_reset_on_floorplan_change(self):
        from repro.flow.design import Design

        nl, fp, libs = build_design(1)
        design = Design("d", "2d", nl, libs)
        design.floorplan = fp
        s1 = design.place_session()
        assert design.place_session() is s1
        design.floorplan = build_floorplan(nl, libs, utilization=0.65)
        s2 = design.place_session()
        assert s2 is not s1
        assert s2.floorplan is design.floorplan

    def test_design_without_floorplan_raises(self):
        from repro.errors import FlowError
        from repro.flow.design import Design

        nl, _fp, libs = build_design(1)
        design = Design("d", "2d", nl, libs)
        with pytest.raises(FlowError):
            design.place_session()

    def test_touch_placement_marks_session_dirty(self):
        from repro.flow.design import Design

        nl, fp, libs = build_design(1)
        design = Design("d", "2d", nl, libs)
        design.floorplan = fp
        session = design.place_session()
        session.legalize_all()
        name = _comb_instances(nl)[0].name
        design.touch_placement(name)
        session.legalize_all()
        assert session.stats.incremental_runs == 1
