"""Tests for the observability subsystem (repro.obs).

Covers the span tracer's contract (nesting, no-op fast path, crash
truncation), the QoR metric registry, the exporters (Chrome trace-event
JSON, JSONL, ASCII views), the derivation of ``stage_seconds`` from
spans, cross-process stitching through the parallel matrix engine, and
the truncated-but-valid trace a quarantined cell leaves behind.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import faults
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import clear_memory_caches, run_matrix
from repro.experiments.telemetry import (
    get_telemetry,
    reset_telemetry,
    timed_stage,
)
from repro.obs import (
    METRIC_DEFS,
    MetricPoint,
    Span,
    attach_subtree,
    coverage_fraction,
    current_span,
    emit_metric,
    find_spans,
    span,
    trace,
    trace_roots,
    trace_snapshot,
    walk_spans,
)
from repro.obs.export import (
    load_trace,
    profile_summary,
    to_chrome_trace,
    tree_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

#: Zero-backoff policy so matrix tests never sleep.
FAST = RetryPolicy(max_retries=2, backoff_s=0.0, keep_going=True)


@pytest.fixture(autouse=True)
def clean_trace(monkeypatch):
    """Every test starts and ends with tracing off and no spans."""
    monkeypatch.delenv(trace.ENV_TRACE, raising=False)
    trace.reset_trace()
    trace.disable_tracing()
    yield
    trace.reset_trace()
    trace.disable_tracing()


@pytest.fixture
def tracing_on():
    trace.enable_tracing()
    yield
    trace.disable_tracing()


@pytest.fixture
def fresh_engine(monkeypatch, tmp_path):
    """Cold caches, private cache/fault-state dirs, zeroed telemetry."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path / "fault-state"))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_fault_state()
    clear_memory_caches()
    reset_telemetry()
    yield
    faults.reset_fault_state()
    clear_memory_caches()
    reset_telemetry()


def _sample_tree() -> list[Span]:
    """A small deterministic span forest used by the exporter tests."""
    with span("flow", design="aes", config="3D_HET") as flow:
        with span("placement") as sp:
            sp.add_event("congestion_retry", attempt=0, peak=1.2)
            emit_metric("utilization", 0.82)
        with span("sta"):
            emit_metric("wns_ns", -0.05)
            emit_metric("tier_cells", 120, tier=1)
    assert flow.status == "ok"
    return trace_roots()


# ----------------------------------------------------------------------
# span mechanics
# ----------------------------------------------------------------------
class TestSpanBasics:
    def test_nesting_builds_a_tree(self, tracing_on):
        with span("a"):
            with span("b"):
                with span("c"):
                    pass
            with span("b2"):
                pass
        roots = trace_roots()
        assert [r.name for r in roots] == ["a"]
        assert [c.name for c in roots[0].children] == ["b", "b2"]
        assert [c.name for c in roots[0].children[0].children] == ["c"]

    def test_durations_are_positive_and_nested(self, tracing_on):
        with span("outer") as outer:
            with span("inner") as inner:
                sum(range(1000))
        assert outer.duration_s > 0.0
        assert inner.duration_s <= outer.duration_s
        assert outer.self_s >= 0.0

    def test_disabled_returns_shared_noop(self):
        assert not trace.tracing_enabled()
        a = span("x", attr=1)
        b = span("y")
        assert a is b  # the shared singleton: no allocation when off
        assert not a.is_recording
        with a as sp:
            sp.set_attr(k=1)
            sp.add_event("e")
        assert trace_roots() == []
        assert current_span() is None

    def test_exception_marks_error_and_keeps_tree(self, tracing_on):
        with pytest.raises(ValueError):
            with span("flow"):
                with span("placement"):
                    pass
                with span("cts"):
                    raise ValueError("no sinks")
        roots = trace_roots()
        assert len(roots) == 1
        flow = roots[0]
        assert flow.status == "error"
        cts = flow.children[1]
        assert cts.status == "error"
        events = [e for e in cts.events if e["name"] == "exception"]
        assert events and events[0]["type"] == "ValueError"
        assert "no sinks" in events[0]["message"]
        # The healthy sibling is untouched.
        assert flow.children[0].status == "ok"

    def test_attach_on_entry_truncated_tree_is_valid(self, tracing_on):
        # Simulate a killed process: a span entered but never exited.
        open_span = Span("flow")
        open_span.__enter__()
        snapshot = trace_snapshot()
        assert snapshot[0]["name"] == "flow"
        assert snapshot[0]["status"] == "open"
        open_span.__exit__(None, None, None)

    def test_env_init(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        assert trace.init_from_env() is True
        for falsy in ("", "0", "false", "off", "no"):
            monkeypatch.setenv(trace.ENV_TRACE, falsy)
            assert trace.init_from_env() is False

    def test_add_span_event_reports_attachment(self, tracing_on):
        assert trace.add_span_event("orphan") is False
        with span("s") as sp:
            assert trace.add_span_event("hit", n=1) is True
        assert sp.events == [{"name": "hit", "n": 1}]


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_emit_requires_active_span(self, tracing_on):
        assert emit_metric("wns_ns", -0.1) is None  # no span open
        with span("sta"):
            point = emit_metric("wns_ns", -0.1)
        assert point is not None
        assert point.unit == "ns"
        assert point.table  # registry fills the paper table in

    def test_registry_defaults_and_overrides(self, tracing_on):
        with span("s") as sp:
            emit_metric("hpwl_mm", 1.5)
            emit_metric("hpwl_mm", 2.5, unit="cm", table="nowhere")
            emit_metric("unregistered_thing", 1.0)
        assert sp.metrics[0].unit == "mm"
        assert sp.metrics[1].unit == "cm"
        assert sp.metrics[1].table == "nowhere"
        assert sp.metrics[2].unit == ""

    def test_tier_scoped_label(self):
        point = MetricPoint(name="tier_cells", value=42, unit="count", tier=1)
        assert point.label() == "tier_cells[t1]=42"

    def test_noop_when_disabled(self):
        assert emit_metric("wns_ns", -0.1) is None

    def test_registry_covers_the_paper_surfaces(self):
        # Spot-check the stage-metric -> paper-table mapping is present.
        for name in ("wns_ns", "miv_count", "clock_skew_ns",
                     "eco_cells_moved", "pinned_cells", "die_cost_1e6"):
            assert name in METRIC_DEFS
            assert METRIC_DEFS[name].table

    def test_roundtrip(self):
        point = MetricPoint(name="wns_ns", value=-0.25, unit="ns",
                            table="Table VI", tier=0)
        assert MetricPoint.from_dict(point.to_dict()) == point


# ----------------------------------------------------------------------
# timed_stage derives stage_seconds from the span (no double-booking)
# ----------------------------------------------------------------------
class TestTimedStage:
    def test_stage_seconds_equal_span_duration(self, tracing_on):
        reset_telemetry()
        with timed_stage("flow", design="aes") as sp:
            sum(range(10000))
        assert sp.is_recording
        recorded = get_telemetry().stage_seconds["flow"]
        assert recorded == sp.duration_s  # the same measurement, exactly
        assert trace_roots()[0].attrs["design"] == "aes"

    def test_works_with_tracing_off(self):
        reset_telemetry()
        with timed_stage("flow"):
            sum(range(10000))
        assert get_telemetry().stage_seconds["flow"] > 0.0
        assert trace_roots() == []


# ----------------------------------------------------------------------
# serialization and determinism
# ----------------------------------------------------------------------
class TestSerialization:
    def test_dict_roundtrip(self, tracing_on):
        roots = _sample_tree()
        rebuilt = Span.from_dict(roots[0].to_dict())
        assert rebuilt.to_dict() == roots[0].to_dict()
        assert rebuilt.children[1].metrics[1].tier == 1

    def test_deterministic_modulo_timestamps(self, tracing_on):
        first = [r.to_dict(strip_times=True) for r in _sample_tree()]
        trace.reset_trace()
        second = [r.to_dict(strip_times=True) for r in _sample_tree()]
        assert first == second

    def test_snapshot_and_stitch(self, tracing_on):
        worker_trees = [t for t in (_sample_tree(),)][0]
        snapshot = [r.to_dict() for r in worker_trees]
        trace.reset_trace()
        trace.enable_tracing()
        with span("matrix") as matrix:
            attached = attach_subtree(snapshot, worker="w1")
        assert [a.name for a in attached] == ["flow"]
        assert matrix.children[0].attrs["worker"] == "w1"
        # The stitched subtree is deep-rebuilt, not shared.
        assert matrix.children[0].children[0].name == "placement"

    def test_stitch_is_noop_when_disabled(self):
        assert attach_subtree([{"name": "x"}]) == []
        assert trace_roots() == []


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_valid_and_loadable(self, tracing_on, tmp_path):
        roots = _sample_tree()
        path = write_chrome_trace(tmp_path / "t.json", roots)
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        names = [e["name"] for e in obj["traceEvents"] if e.get("ph") == "X"]
        assert set(names) == {"flow", "placement", "sta"}
        # Events ride along: the retry is an instant event.
        instants = [e for e in obj["traceEvents"] if e.get("ph") == "i"]
        assert any(e["name"] == "congestion_retry" for e in instants)
        # Metrics are attached to the X event's args.
        sta = next(e for e in obj["traceEvents"]
                   if e.get("ph") == "X" and e["name"] == "sta")
        assert {m["name"] for m in sta["args"]["metrics"]} == {
            "wns_ns", "tier_cells"
        }

    def test_rejects_malformed(self):
        assert validate_chrome_trace({"no": "events"})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}]}
        )
        bad_dur = {"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0, "dur": -5, "pid": 1, "tid": 1}
        ]}
        assert any("dur" in p for p in validate_chrome_trace(bad_dur))

    def test_roundtrip_through_file(self, tracing_on, tmp_path):
        roots = _sample_tree()
        path = write_chrome_trace(tmp_path / "t.json", roots)
        loaded = load_trace(path)
        assert [r.name for r in loaded] == ["flow"]
        assert [c.name for c in loaded[0].children] == ["placement", "sta"]

    def test_worker_subtrees_get_their_own_thread_row(self, tracing_on):
        snapshot = [r.to_dict() for r in _sample_tree()]
        trace.reset_trace()
        trace.enable_tracing()
        with span("matrix"):
            attach_subtree(snapshot, worker="aes:2D_12T")
        obj = to_chrome_trace(trace_roots())
        tids = {e["tid"] for e in obj["traceEvents"] if e.get("ph") == "X"}
        assert len(tids) == 2  # the matrix row plus the worker's own row


class TestJsonlExport:
    def test_roundtrip(self, tracing_on, tmp_path):
        roots = _sample_tree()
        path = write_jsonl(tmp_path / "t.jsonl", roots)
        loaded = load_trace(path)
        assert [r.name for r in loaded] == ["flow"]
        sta = loaded[0].children[1]
        assert {m.name for m in sta.metrics} == {"wns_ns", "tier_cells"}
        records = [json.loads(line)
                   for line in path.read_text().splitlines() if line]
        assert records[0]["parent"] is None
        assert all(r["parent"] == 0 for r in records[1:])


class TestAsciiViews:
    def test_tree_summary_shows_metrics_and_events(self, tracing_on):
        text = tree_summary(_sample_tree())
        assert "flow" in text and "placement" in text
        assert "wns_ns=-0.05 ns" in text
        assert "congestion_retry" in text

    def test_profile_ranks_by_self_time(self, tracing_on):
        roots = _sample_tree()
        text = profile_summary(roots, top=2)
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert len(lines) >= 3  # header + 2 rows + total

    def test_coverage_fraction(self, tracing_on):
        roots = _sample_tree()
        assert 0.0 <= coverage_fraction(roots[0]) <= 1.0
        empty = Span("leaf")
        assert coverage_fraction(empty) == 1.0  # zero-duration: vacuous


# ----------------------------------------------------------------------
# engine integration: stitching, quarantine, warm-run regression
# ----------------------------------------------------------------------
class TestMatrixIntegration:
    CONFIGS = ("2D_12T", "3D_9T")

    def _run(self, seed, jobs):
        return run_matrix(
            designs=("aes",), config_names=self.CONFIGS, scale=0.2,
            seed=seed, target_periods={"aes": 0.9}, jobs=jobs, policy=FAST,
        )

    def test_cross_process_stitching(self, fresh_engine, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        trace.init_from_env()
        matrix = self._run(seed=210, jobs=2)
        assert matrix.ok
        roots = trace_roots()
        matrix_spans = find_spans("matrix", roots)
        assert len(matrix_spans) == 1
        flows = find_spans("flow", roots)
        assert len(flows) == len(self.CONFIGS)
        # Every flow subtree came from a worker and stayed attributable.
        workers = {sp.attrs.get("worker") for sp in flows}
        assert workers == {"aes:2D_12T", "aes:3D_9T"}
        # The stitched subtrees carry real stage spans and metrics.
        for flow in flows:
            assert find_spans("placement", [flow])
            assert any(sp.metrics for sp in walk_spans([flow]))
        assert validate_chrome_trace(to_chrome_trace(roots)) == []

    def test_quarantined_cell_leaves_truncated_valid_trace(
        self, fresh_engine, monkeypatch
    ):
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "site=cell,design=aes,config=3D_9T,kind=raise,times=0",
        )
        faults.reset_fault_state()
        trace.init_from_env()
        matrix = self._run(seed=211, jobs=1)
        assert set(matrix.failed) == {("aes", "3D_9T")}
        roots = trace_roots()
        matrix_span = find_spans("matrix", roots)[0]
        # The failure is a first-class span event on the matrix span.
        quarantines = [e for e in matrix_span.events
                       if e["name"] == "quarantined"]
        assert len(quarantines) == 1
        assert quarantines[0]["config"] == "3D_9T"
        assert "FaultInjected" in quarantines[0]["error"]
        # The failing cell's flow span is truncated but marked, and the
        # whole trace still validates as a Chrome trace.
        flows = find_spans("flow", roots)
        statuses = {sp.attrs.get("config"): sp.status for sp in flows}
        assert statuses["3D_9T"] == "error"
        assert statuses["2D_12T"] == "ok"
        assert validate_chrome_trace(to_chrome_trace(roots)) == []

    def test_fully_warm_matrix_emits_zero_flow_spans(
        self, fresh_engine, monkeypatch
    ):
        # Cold run (untraced) populates the on-disk cache.
        matrix = self._run(seed=212, jobs=1)
        assert matrix.ok
        assert get_telemetry().flows_run == len(self.CONFIGS)
        # Warm run: new process simulated by clearing the memory caches.
        clear_memory_caches()
        reset_telemetry()
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        trace.init_from_env()
        warm = self._run(seed=212, jobs=1)
        assert warm.ok
        assert get_telemetry().flows_run == 0
        roots = trace_roots()
        assert find_spans("matrix", roots)
        assert find_spans("flow", roots) == []  # nothing executed
        assert find_spans("placement", roots) == []
