"""Property-based suites over the core engines (hypothesis).

These hammer the invariants that hold for *any* structurally valid design:
STA monotonicity, netlist edit consistency, legalization legality, power
positivity, and cost-model dominance relations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cost.model import CostModel
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.sta import run_sta

PAIR = make_library_pair()
LIBS = {lib.name: lib for lib in PAIR}

COMB_FUNCTIONS = [
    CellFunction.INV,
    CellFunction.BUF,
    CellFunction.NAND2,
    CellFunction.NOR2,
    CellFunction.XOR2,
    CellFunction.AOI21,
]


@st.composite
def random_dags(draw):
    """A random sequential DAG: FF sources, random gates, FF sinks."""
    lib = PAIR[0]
    n_gates = draw(st.integers(min_value=3, max_value=40))
    n_sources = draw(st.integers(min_value=2, max_value=6))
    rng_choices = st.randoms(use_true_random=False)
    rng = draw(rng_choices)

    nl = Netlist("prop")
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nets: list[str] = []
    for i in range(n_sources):
        nl.add_port(f"in_{i}", PortDirection.INPUT)
        ff = nl.add_instance(f"src_{i}", lib.get(CellFunction.DFF, 1))
        nl.connect(f"in_{i}", ff.name, "D")
        nl.connect("clk", ff.name, "CK")
        nl.add_net(f"q_{i}")
        nl.connect(f"q_{i}", ff.name, "Q")
        nets.append(f"q_{i}")

    for g in range(n_gates):
        fn = rng.choice(COMB_FUNCTIONS)
        drive = rng.choice([1, 2, 4])
        cell = lib.get(fn, drive)
        inst = nl.add_instance(f"g_{g}", cell)
        out = nl.add_net(f"n_{g}")
        nl.connect(out.name, inst.name, cell.output_pin)
        for pin in cell.input_pins:
            nl.connect(rng.choice(nets), inst.name, pin)
        nets.append(out.name)

    # capture the last few nets so timing endpoints exist
    for i, net in enumerate(nets[-3:]):
        ff = nl.add_instance(f"cap_{i}", lib.get(CellFunction.DFF, 1))
        nl.connect(net, ff.name, "D")
        nl.connect("clk", ff.name, "CK")
        nl.add_net(f"cq_{i}")
        nl.connect(f"cq_{i}", ff.name, "Q")
    return nl


def make_calc(nl):
    return DelayCalculator(nl, FanoutWireModel(PAIR[0]), LIBS)


class TestStaProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags())
    def test_generated_dags_are_valid_and_analyzable(self, nl):
        nl.validate()
        nl.topological_order()
        report = run_sta(nl, make_calc(nl), 1.0)
        assert report.endpoint_slacks
        assert report.wns_ns == min(report.endpoint_slacks.values())

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags(),
           p1=st.floats(min_value=0.2, max_value=2.0),
           p2=st.floats(min_value=0.2, max_value=2.0))
    def test_slack_shift_equals_period_shift(self, nl, p1, p2):
        calc = make_calc(nl)
        r1 = run_sta(nl, calc, p1)
        r2 = run_sta(nl, calc, p2)
        assert r2.wns_ns - r1.wns_ns == pytest.approx(p2 - p1, abs=1e-9)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags())
    def test_cell_slack_never_better_than_wns(self, nl):
        calc = make_calc(nl)
        report = run_sta(nl, calc, 0.5, with_cell_slacks=True)
        for name, slack in report.cell_slack.items():
            assert slack >= report.wns_ns - 1e-9, name

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags())
    def test_critical_path_reconstruction(self, nl):
        report = run_sta(nl, make_calc(nl), 0.7)
        cp = report.critical_path
        rebuilt = 0.7 + cp.clock_skew_ns - cp.setup_ns - cp.path_delay_ns
        assert rebuilt == pytest.approx(cp.slack_ns, abs=1e-6)


class TestEditProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags(), seed=st.integers(min_value=0, max_value=999))
    def test_upsize_round_trip_preserves_validity(self, nl, seed):
        import random

        rng = random.Random(seed)
        lib = PAIR[0]
        names = [
            n for n, i in nl.instances.items() if not i.cell.is_sequential
        ]
        for name in rng.sample(names, min(5, len(names))):
            inst = nl.instances[name]
            bigger = lib.upsize(inst.cell)
            if bigger is not None:
                nl.rebind(name, bigger)
        nl.validate()
        nl.topological_order()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags())
    def test_remap_to_slow_library_never_speeds_up(self, nl):
        lib9 = PAIR[1]
        calc = make_calc(nl)
        before = run_sta(nl, calc, 1.0)
        for name, inst in list(nl.instances.items()):
            nl.rebind(name, lib9.equivalent_of(inst.cell))
        calc.invalidate()
        after = run_sta(nl, calc, 1.0)
        assert after.wns_ns <= before.wns_ns + 1e-9

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags())
    def test_disconnect_reconnect_identity(self, nl):
        calc = make_calc(nl)
        before = run_sta(nl, calc, 1.0)
        # pick an arbitrary connected gate input and bounce it
        target = next(
            (n, p, i.net_of(p))
            for n, i in sorted(nl.instances.items())
            if not i.cell.is_sequential
            for p in i.cell.input_pins
            if i.net_of(p) is not None
        )
        name, pin, net = target
        nl.disconnect(name, pin)
        nl.connect(net, name, pin)
        calc.invalidate()
        after = run_sta(nl, calc, 1.0)
        assert after.wns_ns == pytest.approx(before.wns_ns, abs=1e-12)


class TestPowerProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(nl=random_dags(),
           f=st.floats(min_value=0.2, max_value=4.0))
    def test_power_positive_and_frequency_linear_dynamic(self, nl, f):
        from repro.power.analysis import analyze_power

        calc = make_calc(nl)
        p = analyze_power(nl, calc, f, LIBS)
        assert p.total_mw > 0
        p2 = analyze_power(nl, calc, 2 * f, LIBS)
        dyn1 = p.switching_mw + p.internal_mw
        dyn2 = p2.switching_mw + p2.internal_mw
        assert dyn2 == pytest.approx(2 * dyn1, rel=1e-9)


class TestCostProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        area=st.floats(min_value=0.05, max_value=200.0),
        dw=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_worse_defects_never_cheapen_dies(self, area, dw):
        base = CostModel()
        worse = CostModel(defect_density_per_mm2=base.defect_density_per_mm2 + dw)
        assert worse.die_cost(area, 1).die_cost > base.die_cost(area, 1).die_cost

    @settings(max_examples=40, deadline=None)
    @given(area=st.floats(min_value=0.05, max_value=200.0))
    def test_yield_in_unit_interval(self, area):
        model = CostModel()
        for tiers in (1, 2):
            y = model.die_yield(area, tiers)
            assert 0.0 < y <= 1.0
