"""Tests for the 9/12-track library pair calibration (repro.liberty.presets).

These pin down the relative numbers the paper's conclusions rest on; if a
refactor drifts the calibration, these fail before any flow test does.
"""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import (
    NINE_TRACK_CORNER,
    TWELVE_TRACK_CORNER,
    make_library_pair,
)


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


class TestCorners:
    def test_supply_voltages(self, pair):
        lib12, lib9 = pair
        assert lib12.vdd_v == pytest.approx(0.90)
        assert lib9.vdd_v == pytest.approx(0.81)

    def test_track_heights(self, pair):
        lib12, lib9 = pair
        assert lib12.tracks == 12
        assert lib9.tracks == 9
        assert lib12.cell_height_um == pytest.approx(1.2)
        assert lib9.cell_height_um == pytest.approx(0.9)

    def test_area_scale_is_track_ratio(self):
        assert NINE_TRACK_CORNER.area_scale == pytest.approx(0.75)
        assert TWELVE_TRACK_CORNER.area_scale == pytest.approx(1.0)


class TestRelativeCalibration:
    def test_cell_area_ratio_075(self, pair):
        """9-track cells are 25% smaller (same width, 9 vs 12 tracks)."""
        lib12, lib9 = pair
        for cell12 in lib12.cells:
            if cell12.is_macro:
                continue
            cell9 = lib9.cell(cell12.name.replace("_12T", "_9T"))
            assert cell9.area_um2 / cell12.area_um2 == pytest.approx(0.75)

    def test_memory_macro_same_size_in_both(self, pair):
        """Paper: 'the memories ... are of the same size in both variants'."""
        lib12, lib9 = pair
        mem12 = lib12.get(CellFunction.MEMORY, 1)
        mem9 = lib9.get(CellFunction.MEMORY, 1)
        assert mem12.area_um2 == pytest.approx(mem9.area_um2)

    def test_fo4_delay_ratio_in_table2_band(self, pair):
        """Table II FO-4 ratios are 1.60-1.89; loaded stages a bit higher."""
        lib12, lib9 = pair
        inv12 = lib12.get(CellFunction.INV, 1)
        inv9 = lib9.get(CellFunction.INV, 1)
        load12 = 4 * inv12.input_capacitance_ff("A")
        load9 = 4 * inv9.input_capacitance_ff("A")
        d12 = inv12.worst_arc_to_output().delay.lookup(0.02, load12)
        d9 = inv9.worst_arc_to_output().delay.lookup(0.02, load9)
        assert 1.4 <= d9 / d12 <= 2.2

    def test_leakage_ratio_about_30x(self, pair):
        """Table II: 0.093 uW vs 0.003 uW driver leakage."""
        lib12, lib9 = pair
        inv12 = lib12.get(CellFunction.INV, 1)
        inv9 = lib9.get(CellFunction.INV, 1)
        assert inv12.leakage_mw / inv9.leakage_mw == pytest.approx(30.0, rel=0.01)

    def test_dynamic_energy_ratio(self, pair):
        """9-track switches roughly half the energy (Table II power ratio)."""
        lib12, lib9 = pair
        e12 = lib12.get(CellFunction.NAND2, 1).internal_energy_pj
        e9 = lib9.get(CellFunction.NAND2, 1).internal_energy_pj
        assert 0.4 <= e9 / e12 <= 0.7

    def test_sequential_constants_scale(self, pair):
        lib12, lib9 = pair
        dff12 = lib12.get(CellFunction.DFF, 1)
        dff9 = lib9.get(CellFunction.DFF, 1)
        assert dff9.clk_to_q_ns > dff12.clk_to_q_ns
        assert dff9.setup_ns > dff12.setup_ns

    def test_shared_beol(self, pair):
        """Track variants share the BEOL stack (Section IV-D)."""
        lib12, lib9 = pair
        assert lib12.wire_r_kohm_per_um == lib9.wire_r_kohm_per_um
        assert lib12.wire_c_ff_per_um == lib9.wire_c_ff_per_um

    def test_drive_families_complete(self, pair):
        """Every combinational function offers x1..x8 in both libraries."""
        for lib in pair:
            for fn in (
                CellFunction.INV,
                CellFunction.NAND2,
                CellFunction.XOR2,
                CellFunction.DFF,
            ):
                assert lib.drives_for(fn) == (1, 2, 4, 8)
            assert lib.drives_for(CellFunction.CLKBUF) == (1, 2, 4, 8, 16)
