"""Detailed behavioral tests for the optimizer's transforms (repro.flow.opt).

The coarse convergence behaviour is covered in test_opt.py; these pin the
semantics of the individual transforms: cloning splits fanout correctly,
buffering rewires only the targeted sinks, and both keep functional
equivalence (every original sink still transitively driven by the
original logic function's cone).
"""

import pytest

from repro.flow.design import Design
from repro.flow.opt import AreaBudget, _insert_buffer, _try_clone
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.timing.delaycalc import DelayCalculator, PlacementWireModel


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def fan_design(pair, n_sinks=6):
    """One NAND2 driving n placed inverters."""
    lib12, _ = pair
    nl = Netlist("fan")
    nl.add_port("a", PortDirection.INPUT)
    nl.add_port("b", PortDirection.INPUT)
    drv = nl.add_instance("drv", lib12.get(CellFunction.NAND2, 8))
    drv.x_um, drv.y_um = 0.0, 0.0
    nl.connect("a", "drv", "A")
    nl.connect("b", "drv", "B")
    nl.add_net("big")
    nl.connect("big", "drv", "Y")
    for i in range(n_sinks):
        s = nl.add_instance(f"s{i}", lib12.get(CellFunction.INV, 1))
        s.x_um, s.y_um = 10.0 + 5.0 * i, 0.0
        nl.connect("big", f"s{i}", "A")
        nl.add_net(f"o{i}")
        nl.connect(f"o{i}", f"s{i}", "Y")
    design = Design("fan", "2D", nl, {0: lib12})
    calc = DelayCalculator(
        nl, PlacementWireModel(lib12), design.libraries_by_name()
    )
    return design, calc


class TestClone:
    def test_clone_splits_fanout(self, pair):
        design, calc = fan_design(pair)
        nl = design.netlist
        before = nl.nets["big"].fanout
        assert _try_clone(design, calc, "drv", AreaBudget(design))
        nl.validate()
        clones = [n for n in nl.instances if n.startswith("drv_cl")]
        assert len(clones) == 1
        clone = nl.instances[clones[0]]
        # same cell, same inputs
        assert clone.cell is nl.instances["drv"].cell
        assert clone.net_of("A") == "a"
        assert clone.net_of("B") == "b"
        # fanout split between original and clone
        clone_net = clone.net_of("Y")
        total = nl.nets["big"].fanout + nl.nets[clone_net].fanout
        assert total == before
        assert nl.nets["big"].fanout < before

    def test_clone_refuses_single_sink(self, pair):
        design, calc = fan_design(pair, n_sinks=1)
        assert not _try_clone(design, calc, "drv", AreaBudget(design))

    def test_clone_refuses_macro(self, pair):
        lib12, lib9 = pair
        from repro.netlist.generators import generate_netlist

        nl = generate_netlist("cpu", lib12, scale=0.3, seed=17)
        design = Design("cpu", "2D", nl, {0: lib12})
        calc = DelayCalculator(
            nl, PlacementWireModel(lib12), design.libraries_by_name()
        )
        macro = nl.memory_macros()[0]
        assert not _try_clone(design, calc, macro.name, AreaBudget(design))

    def test_clone_respects_budget(self, pair):
        design, calc = fan_design(pair)

        class NoBudget:
            def can_grow(self, tier, delta):
                return False

            def apply(self, tier, delta):
                raise AssertionError("must not apply when denied")

        assert not _try_clone(design, calc, "drv", NoBudget())

    def test_clone_preserves_sta(self, pair):
        """Cloning must not break analyzability, and can only help timing."""
        from repro.timing.sta import run_sta

        design, calc = fan_design(pair, n_sinks=10)
        nl = design.netlist
        # register the endpoint so there is timing to check
        nl.add_port("clk", PortDirection.INPUT, is_clock=True)
        ff = nl.add_instance("ff", pair[0].get(CellFunction.DFF, 1))
        ff.x_um, ff.y_um = 60.0, 0.0
        nl.connect("o0", "ff", "D")
        nl.connect("clk", "ff", "CK")
        nl.add_net("q")
        nl.connect("q", "ff", "Q")
        before = run_sta(nl, calc, 0.5)
        assert _try_clone(design, calc, "drv", AreaBudget(design))
        calc.invalidate()
        after = run_sta(nl, calc, 0.5)
        assert after.wns_ns >= before.wns_ns - 1e-9


class TestBufferInsertion:
    def test_buffer_rewires_target_sink_only(self, pair):
        design, calc = fan_design(pair)
        nl = design.netlist
        assert _insert_buffer(design, calc, "drv", "s3", AreaBudget(design))
        nl.validate()
        bufs = [n for n in nl.instances if n.startswith("optbuf")]
        assert len(bufs) == 1
        buf = nl.instances[bufs[0]]
        assert buf.net_of("A") == "big"
        # s3 now reads through the buffer; the others still read 'big'
        assert nl.instances["s3"].net_of("A") == buf.net_of("Y")
        for i in (0, 1, 2, 4, 5):
            assert nl.instances[f"s{i}"].net_of("A") == "big"

    def test_buffer_placed_at_midpoint(self, pair):
        design, calc = fan_design(pair)
        nl = design.netlist
        _insert_buffer(design, calc, "drv", "s5", AreaBudget(design))
        buf = next(
            i for n, i in nl.instances.items() if n.startswith("optbuf")
        )
        drv_x = nl.instances["drv"].center()[0]
        sink_x = nl.instances["s5"].center()[0]
        assert drv_x < buf.x_um < sink_x

    def test_buffer_respects_budget(self, pair):
        design, calc = fan_design(pair)

        class NoBudget:
            def can_grow(self, tier, delta):
                return False

            def apply(self, tier, delta):
                raise AssertionError("must not apply when denied")

        assert not _insert_buffer(design, calc, "drv", "s0", NoBudget())

    def test_buffer_requires_existing_connection(self, pair):
        design, calc = fan_design(pair)
        # s0 is not driven by s1, so there is nothing to buffer
        assert not _insert_buffer(design, calc, "s1", "s0", AreaBudget(design))
