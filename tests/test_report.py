"""Tests for flow finalization and the FlowResult (repro.flow.report)."""

import pytest

from repro.flow import finalize_design, run_flow_2d, run_flow_hetero_3d
from repro.flow.report import delta_pct
from repro.liberty.presets import make_library_pair


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def finished(pair):
    lib12, lib9 = pair
    return run_flow_hetero_3d(
        "cpu", lib12, lib9, period_ns=1.2, scale=0.3, seed=16
    )


class TestFlowResult:
    def test_row_is_flat_and_complete(self, finished):
        _, result = finished
        row = result.row()
        expected = {
            "frequency_ghz", "si_area_mm2", "chip_width_um", "density_pct",
            "wl_mm", "mivs", "total_power_mw", "wns_ns", "tns_ns",
            "effective_delay_ns", "pdp_pj", "die_cost_1e6", "cost_per_cm2",
            "ppc",
        }
        assert set(row) == expected
        assert all(isinstance(v, float) for v in row.values())

    def test_derived_quantities_consistent(self, finished):
        _, r = finished
        assert r.effective_delay_ns == pytest.approx(r.period_ns - r.wns_ns)
        assert r.pdp_pj == pytest.approx(
            r.total_power_mw * r.effective_delay_ns
        )
        assert r.si_area_mm2 == pytest.approx(2 * r.footprint_mm2)
        assert r.total_power_mw == pytest.approx(r.power.total_mw)
        assert r.power.clock_mw > 0  # CTS ran

    def test_memory_stats_for_cpu(self, finished):
        _, r = finished
        assert r.memory_nets is not None
        assert r.memory_nets.input_net_latency_ps >= 0
        assert r.memory_nets.output_net_latency_ps >= 0
        assert r.memory_nets.net_switching_power_uw > 0

    def test_no_memory_stats_without_macros(self, pair):
        lib12, _ = pair
        _, r = run_flow_2d("aes", lib12, period_ns=0.8, scale=0.2, seed=16)
        assert r.memory_nets is None

    def test_refinalize_matches(self, finished):
        """Finalizing the same design twice is deterministic."""
        design, first = finished
        second = finalize_design(design)
        assert second.row() == first.row()

    def test_cost_fields_cross_check(self, finished):
        from repro.cost.model import CostModel

        _, r = finished
        expected = CostModel().die_cost(r.footprint_mm2, 2)
        assert r.die_cost_1e6 == pytest.approx(expected.die_cost * 1e6)
        assert r.cost_per_cm2 == pytest.approx(expected.cost_per_cm2)


class TestDeltaPct:
    def test_basic(self):
        assert delta_pct(90.0, 100.0) == pytest.approx(-10.0)
        assert delta_pct(110.0, 100.0) == pytest.approx(10.0)

    def test_zero_reference(self):
        assert delta_pct(5.0, 0.0) == 0.0
