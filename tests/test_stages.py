"""Tests for shared flow stages (repro.flow.stages)."""

import pytest

from repro.flow.design import Design
from repro.flow.stages import (
    CONGESTION_LIMIT,
    legalize_all_tiers,
    place_with_congestion_control,
)
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def make_design(pair, name="aes", scale=0.25, tiers=1):
    lib12, lib9 = pair
    nl = generate_netlist(name, lib12, scale=scale, seed=15)
    tier_libs = {0: lib12} if tiers == 1 else {0: lib12, 1: lib12}
    return Design(name, "t", nl, tier_libs, target_period_ns=1.0,
                  utilization_target=0.8)


class TestPlaceWithCongestionControl:
    def test_places_and_records_notes(self, pair):
        design = make_design(pair)
        used = place_with_congestion_control(design)
        assert design.floorplan is not None
        assert used == design.notes["utilization_used"]
        assert "peak_congestion_at_floorplan" in design.notes
        for inst in design.netlist.instances.values():
            assert inst.is_placed

    def test_uncongested_design_keeps_target(self, pair):
        design = make_design(pair, name="aes")
        used = place_with_congestion_control(design)
        assert used == design.utilization_target

    def test_congested_design_backs_off(self, pair):
        """LDPC's global wiring forces a lower utilization (Table VI).

        Congestion only crosses the limit after synthesis sizing has
        grown the pin loads, exactly as in the real flow order.
        """
        from repro.flow.synthesis import initial_sizing
        from repro.netlist.generators import generate_netlist

        lib12, _ = pair
        # seed 1 at scale 0.5 is the matrix condition where LDPC's global
        # wiring crosses the routability limit
        nl = generate_netlist("ldpc", lib12, scale=0.5, seed=1)
        design = Design("ldpc", "t", nl, {0: lib12},
                        target_period_ns=0.5, utilization_target=0.85)
        initial_sizing(design)
        used = place_with_congestion_control(design)
        assert used < 0.85
        assert design.notes["peak_congestion_at_floorplan"] > 0

    def test_retry_loop_exhausts_at_max_retries(self, pair, monkeypatch):
        """A floorplan that never routes backs off exactly MAX_RETRIES
        times and keeps the *final* attempt's congestion in the notes."""
        from types import SimpleNamespace

        import repro.flow.stages as stages

        peaks = []

        def always_congested(netlist, lib, w, h, tiers):
            peaks.append(2.0 - 0.1 * len(peaks))  # distinct per attempt
            return SimpleNamespace(peak_demand=peaks[-1])

        monkeypatch.setattr(stages, "analyze_congestion", always_congested)
        design = make_design(pair)
        used = place_with_congestion_control(design)
        assert len(peaks) == stages.MAX_RETRIES + 1
        assert used == pytest.approx(
            design.utilization_target
            * stages.UTILIZATION_BACKOFF ** stages.MAX_RETRIES
        )
        assert design.notes["peak_congestion_at_floorplan"] == peaks[-1]
        assert design.notes["utilization_used"] == used

    def test_retry_loop_stops_once_under_limit(self, pair, monkeypatch):
        """Congestion clearing on the third attempt stops the backoff at
        two shrinks -- no further attempts are spent."""
        from types import SimpleNamespace

        import repro.flow.stages as stages

        demands = iter([1.8, 1.3, CONGESTION_LIMIT * 0.9])
        calls = []

        def scripted(netlist, lib, w, h, tiers):
            calls.append(1)
            return SimpleNamespace(peak_demand=next(demands))

        monkeypatch.setattr(stages, "analyze_congestion", scripted)
        design = make_design(pair)
        used = place_with_congestion_control(design)
        assert len(calls) == 3
        assert used == pytest.approx(
            design.utilization_target * stages.UTILIZATION_BACKOFF**2
        )
        assert (
            design.notes["peak_congestion_at_floorplan"]
            == CONGESTION_LIMIT * 0.9
        )

    def test_pseudo_3d_mode_halves_footprint(self, pair):
        flat = make_design(pair)
        place_with_congestion_control(flat)
        pseudo = make_design(pair, tiers=2)
        place_with_congestion_control(pseudo, demand_scale=0.5,
                                      area_scale=0.5)
        assert pseudo.floorplan.area_um2 == pytest.approx(
            flat.floorplan.area_um2 / 2, rel=0.02
        )


class TestLegalizeAllTiers:
    def test_requires_floorplan(self, pair):
        design = make_design(pair)
        from repro.errors import PlacementError

        with pytest.raises(PlacementError):
            legalize_all_tiers(design)

    def test_returns_stats_per_tier(self, pair):
        design = make_design(pair, tiers=2)
        # split instances over the tiers
        for i, inst in enumerate(design.netlist.instances.values()):
            if not inst.cell.is_macro:
                inst.tier = i % 2
        place_with_congestion_control(design, demand_scale=0.5,
                                      area_scale=0.5)
        stats = legalize_all_tiers(design)
        assert set(stats) == {0, 1}
        assert all(s.cells > 0 for s in stats.values())
