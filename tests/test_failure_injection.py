"""Failure-injection tests: every engine must fail loudly, not wrongly.

Corrupt databases, impossible constraints and out-of-domain inputs should
raise the package's typed exceptions with a usable message -- never
silently produce a wrong layout or report.
"""

import pytest

from repro.errors import (
    FlowError,
    LibraryError,
    NetlistError,
    PartitionError,
    PlacementError,
    ReproError,
    TimingError,
)
from repro.flow.design import Design
from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.generators import generate_netlist
from repro.place.floorplan import build_floorplan
from repro.place.legalizer import legalize
from repro.place.quadratic import global_place
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def lib12(pair):
    return pair[0]


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (LibraryError, NetlistError, TimingError,
                    PlacementError, PartitionError, FlowError):
            assert issubclass(exc, ReproError)

    def test_catchable_as_family(self, lib12):
        nl = Netlist("x")
        with pytest.raises(ReproError):
            nl.connect("missing", "nobody", "A")


class TestCorruptNetlists:
    def test_stale_driver_detected(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        some_net = next(
            n for n in nl.nets.values() if n.driver is not None
        )
        some_net.driver = ("ghost_instance", "Y")
        with pytest.raises(NetlistError):
            nl.validate()

    def test_stale_sink_detected(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        some_net = next(n for n in nl.nets.values() if n.sinks)
        some_net.sinks.append(("ghost_instance", "A"))
        with pytest.raises(NetlistError):
            nl.validate()

    def test_hand_built_loop_rejected_by_sta(self, pair, lib12):
        nl = Netlist("loop")
        a = nl.add_instance("a", lib12.get(CellFunction.INV, 1))
        b = nl.add_instance("b", lib12.get(CellFunction.INV, 1))
        nl.add_net("na")
        nl.add_net("nb")
        nl.connect("na", "a", "Y")
        nl.connect("na", "b", "A")
        nl.connect("nb", "b", "Y")
        nl.connect("nb", "a", "A")
        calc = DelayCalculator(nl, FanoutWireModel(lib12),
                               {l.name: l for l in pair})
        with pytest.raises(NetlistError):
            run_sta(nl, calc, 1.0)


class TestImpossibleConstraints:
    def test_negative_period_rejected(self, pair, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        calc = DelayCalculator(nl, FanoutWireModel(lib12),
                               {l.name: l for l in pair})
        with pytest.raises(TimingError):
            run_sta(nl, calc, -1.0)

    def test_overfull_die_rejected_by_legalizer(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        global_place(nl, fp)
        fp.width_um *= 0.5
        with pytest.raises(PlacementError):
            legalize(nl, fp, lib12, tier=0)

    def test_unplaced_design_rejected_by_legalizer(self, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        with pytest.raises(PlacementError):
            legalize(nl, fp, lib12, tier=0)

    def test_empty_netlist_rejected_by_floorplanner(self, lib12):
        nl = Netlist("empty")
        with pytest.raises(PlacementError):
            build_floorplan(nl, {0: lib12}, utilization=0.7)

    def test_three_tier_floorplan_rejected(self, pair, lib12):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        with pytest.raises(PlacementError):
            build_floorplan(
                nl, {0: lib12, 1: lib12, 2: lib12}, utilization=0.7
            )


class TestLibraryMisuse:
    def test_unknown_function_drive(self, lib12):
        with pytest.raises(LibraryError):
            lib12.get(CellFunction.INV, 3)

    def test_fixed_instance_must_be_placed_for_anchor(self, lib12, pair):
        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        inst = next(iter(nl.instances.values()))
        inst.fixed = True  # fixed but never placed
        fp = build_floorplan(nl, {0: lib12}, utilization=0.7)
        with pytest.raises(PlacementError):
            global_place(nl, fp)


class TestFlowMisuse:
    def test_finalize_requires_floorplan(self, pair, lib12):
        from repro.flow.report import finalize_design

        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        design = Design("aes", "2D", nl, {0: lib12})
        with pytest.raises(ValueError):
            finalize_design(design)

    def test_cts_before_placement_rejected(self, pair, lib12):
        from repro.cts.tree import ClockTreeSynthesizer, TierPolicy

        nl = generate_netlist("aes", lib12, scale=0.2, seed=11)
        cts = ClockTreeSynthesizer(nl, {0: lib12}, TierPolicy.SINGLE)
        with pytest.raises(FlowError):
            cts.run()
