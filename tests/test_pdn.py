"""Tests for the power delivery network analysis (repro.pdn)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FlowError
from repro.flow import run_flow_2d, run_flow_hetero_3d
from repro.liberty.presets import make_library_pair
from repro.pdn import PdnConfig, analyze_pdn, solve_ir_drop


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


class TestSolver:
    def test_uniform_load_peaks_at_center(self):
        n = 12
        drops = solve_ir_drop({0: np.full((n, n), 0.5)})
        d = drops[0]
        center = d[n // 2, n // 2]
        assert center == d.max()
        assert d[0, 0] < center  # pad-adjacent corners barely drop

    def test_drop_scales_linearly_with_current(self):
        n = 12
        one = solve_ir_drop({0: np.full((n, n), 0.5)})[0]
        two = solve_ir_drop({0: np.full((n, n), 1.0)})[0]
        assert np.allclose(two, 2 * one, rtol=1e-6)

    def test_top_tier_drops_more(self):
        """The via-fed top die pays for every milliamp twice."""
        n = 10
        maps = {0: np.full((n, n), 0.4), 1: np.full((n, n), 0.4)}
        drops = solve_ir_drop(maps, PdnConfig(bins=n))
        assert drops[1].max() > drops[0].max()
        assert drops[1].mean() > drops[0].mean()

    def test_idle_top_tier_rides_bottom_voltage(self):
        n = 10
        maps = {0: np.full((n, n), 0.4), 1: np.zeros((n, n))}
        drops = solve_ir_drop(maps, PdnConfig(bins=n))
        # with no current of its own, the top tier sits at (roughly) the
        # bottom tier's local voltage
        assert drops[1].max() <= drops[0].max() + 1e-6

    def test_stiffer_grid_reduces_drop(self):
        n = 10
        maps = {0: np.full((n, n), 0.5)}
        soft = solve_ir_drop(maps, PdnConfig(bins=n, grid_r_ohm=0.2))[0]
        stiff = solve_ir_drop(maps, PdnConfig(bins=n, grid_r_ohm=0.02))[0]
        assert stiff.max() < soft.max()

    def test_via_resistance_penalizes_top_tier_only(self):
        n = 10
        maps = {0: np.full((n, n), 0.3), 1: np.full((n, n), 0.3)}
        cheap = solve_ir_drop(maps, PdnConfig(bins=n, via_r_ohm=0.05))
        costly = solve_ir_drop(maps, PdnConfig(bins=n, via_r_ohm=2.0))
        assert costly[1].max() > cheap[1].max()
        assert abs(costly[0].max() - cheap[0].max()) < 0.5 * (
            costly[1].max() - cheap[1].max()
        )

    def test_requires_tier_zero(self):
        with pytest.raises(FlowError):
            solve_ir_drop({1: np.zeros((12, 12))})

    def test_rejects_wrong_shape(self):
        with pytest.raises(FlowError):
            solve_ir_drop({0: np.zeros((3, 4))})

    def test_rejects_bad_config(self):
        with pytest.raises(FlowError):
            PdnConfig(bins=1)
        with pytest.raises(FlowError):
            PdnConfig(grid_r_ohm=0.0)

    @settings(max_examples=15, deadline=None)
    @given(
        current=st.floats(min_value=0.01, max_value=5.0),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_drops_nonnegative_property(self, current, seed):
        rng = np.random.default_rng(seed)
        n = 8
        maps = {0: rng.random((n, n)) * current}
        drops = solve_ir_drop(maps, PdnConfig(bins=n))[0]
        assert (drops >= -1e-9).all()


class TestDesignAnalysis:
    @pytest.fixture(scope="class")
    def hetero(self, pair):
        lib12, lib9 = pair
        design, _ = run_flow_hetero_3d(
            "cpu", lib12, lib9, period_ns=1.2, scale=0.4, seed=4
        )
        return design

    def test_report_structure(self, hetero):
        report = analyze_pdn(hetero)
        assert set(report.tiers) == {0, 1}
        for tier, tr in report.tiers.items():
            assert tr.total_current_ma > 0
            assert tr.worst_drop_mv >= tr.mean_drop_mv >= 0
        assert report.worst_tier.tier in (0, 1)

    def test_current_scale(self, hetero):
        base = analyze_pdn(hetero)
        scaled = analyze_pdn(hetero, current_scale=50.0)
        for tier in base.tiers:
            assert scaled.tiers[tier].worst_drop_mv == pytest.approx(
                50.0 * base.tiers[tier].worst_drop_mv, rel=1e-6
            )

    def test_budget_check(self, hetero):
        tiny = analyze_pdn(hetero)
        assert tiny.meets_budget()  # repro-scale currents are tiny
        huge = analyze_pdn(hetero, current_scale=1e7)
        assert not huge.meets_budget()

    def test_2d_design_single_tier(self, pair):
        lib12, _ = pair
        design, _ = run_flow_2d("aes", lib12, period_ns=0.8, scale=0.3, seed=4)
        report = analyze_pdn(design)
        assert set(report.tiers) == {0}

    def test_unplaced_design_rejected(self, pair):
        from repro.flow.design import Design
        from repro.netlist.generators import generate_netlist

        lib12, _ = pair
        nl = generate_netlist("aes", lib12, scale=0.2, seed=4)
        design = Design("aes", "2D", nl, {0: lib12})
        with pytest.raises(ValueError):
            analyze_pdn(design)
