"""Tests for Algorithm 1 (repro.partition.repartition) with scripted timers."""

import pytest

from repro.partition.repartition import (
    RepartitionConfig,
    repartition_eco,
)
from repro.timing.sta import CriticalPath, PathStep


def path(steps_spec, slack=-0.2):
    """Build a CriticalPath from (instance, tier, delay) triples."""
    steps = tuple(
        PathStep(
            instance=name,
            cell_name="X",
            tier=tier,
            arc_delay_ns=delay,
            wire_delay_ns=0.0,
            wirelength_um=1.0,
            crosses_tier=False,
        )
        for name, tier, delay in steps_spec
    )
    return CriticalPath(
        endpoint=("ep", "D"),
        slack_ns=slack,
        launch_latency_ns=0.0,
        capture_latency_ns=0.0,
        setup_ns=0.03,
        steps=steps,
    )


class _FakeDesign:
    """Scripted environment: moving slow cells to fast halves their delay."""

    def __init__(self):
        self.tier = {"a": 1, "b": 1, "c": 0, "d": 1}
        self.delay = {"a": 0.10, "b": 0.09, "c": 0.02, "d": 0.015}
        self.moves: list[list[str]] = []
        self.undone = 0

    def analyze(self):
        steps = [(n, self.tier[n], self.delay[n]) for n in ("a", "b", "c", "d")]
        total = sum(d for _n, _t, d in steps)
        slack = 0.15 - total
        return slack, min(0.0, slack), [path(steps, slack)]

    def move_to_fast(self, cells):
        token = []
        for name in cells:
            token.append((name, self.tier[name], self.delay[name]))
            self.tier[name] = 0
            self.delay[name] = self.delay[name] / 2.0
        self.moves.append(list(cells))
        return token

    def undo(self, token):
        self.undone += 1
        for name, tier, delay in token:
            self.tier[name] = tier
            self.delay[name] = delay

    def tier_areas(self):
        slow = sum(1.0 for t in self.tier.values() if t == 1)
        fast = sum(1.0 for t in self.tier.values() if t == 0)
        return slow, fast


class TestAlgorithmOne:
    def test_moves_slow_critical_cells_and_improves(self):
        env = _FakeDesign()
        wns_before = env.analyze()[0]
        result = repartition_eco(
            env.analyze, env.move_to_fast, env.undo, env.tier_areas,
            slow_tier=1,
        )
        assert result.batches_accepted >= 1
        assert result.wns_after_ns > wns_before
        moved = {c for batch in env.moves for c in batch}
        # the two dominant slow cells are the ones worth moving
        assert "a" in moved
        assert env.tier["a"] == 0

    def test_respects_unbalance_budget(self):
        env = _FakeDesign()
        config = RepartitionConfig(unbalance_max=0.0)
        result = repartition_eco(
            env.analyze, env.move_to_fast, env.undo, env.tier_areas,
            slow_tier=1, config=config,
        )
        # |fast-slow|/total = |3-1|/4 = 0.5 > 0 already: stop immediately
        assert result.batches_accepted == 0
        assert result.stop_reason == "unbalance budget exhausted"

    def test_undoes_non_improving_batches(self):
        env = _FakeDesign()

        # sabotage: moving cells does NOT change delays
        def move_noop(cells):
            return [(c, env.tier[c], env.delay[c]) for c in cells]

        result = repartition_eco(
            env.analyze, move_noop, env.undo, env.tier_areas, slow_tier=1,
            config=RepartitionConfig(max_iterations=4),
        )
        assert result.batches_accepted == 0
        assert result.batches_rejected >= 1
        assert env.undone == result.batches_rejected

    def test_stops_when_critical_cells_are_fast(self):
        env = _FakeDesign()
        env.tier = {n: 0 for n in env.tier}  # everything already fast
        result = repartition_eco(
            env.analyze, env.move_to_fast, env.undo, env.tier_areas,
            slow_tier=1,
            # the all-fast state is maximally unbalanced; let the loop
            # reach the criticality check instead
            config=RepartitionConfig(unbalance_max=2.0),
        )
        assert result.batches_accepted == 0
        assert result.stop_reason == "critical cells no longer on slow die"

    def test_iteration_budget(self):
        env = _FakeDesign()
        config = RepartitionConfig(max_iterations=1)
        result = repartition_eco(
            env.analyze, env.move_to_fast, env.undo, env.tier_areas,
            slow_tier=1, config=config,
        )
        assert result.iterations == 1

    def test_threshold_decay_on_rejection(self):
        """After undo, d_k decays so the next batch is more inclusive."""
        env = _FakeDesign()
        calls = []

        real_move = env.move_to_fast

        count = [0]

        def move_flaky(cells):
            calls.append(list(cells))
            count[0] += 1
            if count[0] == 1:
                return [(c, env.tier[c], env.delay[c]) for c in cells]  # noop
            return real_move(cells)

        result = repartition_eco(
            env.analyze, move_flaky, env.undo, env.tier_areas, slow_tier=1,
            config=RepartitionConfig(max_iterations=6),
        )
        assert result.batches_rejected >= 1
        assert result.batches_accepted >= 1
        # the post-decay batch must include at least as many cells
        assert len(calls[1]) >= len(calls[0])

    def test_no_paths_stop(self):
        def analyze():
            return -1.0, -1.0, []  # violating, but nothing to backtrace

        result = repartition_eco(
            analyze, lambda c: [], lambda t: None, lambda: (1.0, 1.0),
            slow_tier=1,
        )
        assert result.stop_reason == "no critical paths"
