"""Helpers for tests that drive a real ``repro serve`` daemon subprocess."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.client import ServeClient

SRC = Path(__file__).resolve().parent.parent / "src"


def daemon_env(state_dir: Path, **extra: str) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_SERVE_DIR"] = str(state_dir)
    env.update(extra)
    return env


def start_daemon(
    state_dir: Path,
    *,
    args: tuple[str, ...] = (),
    env: dict | None = None,
    boot_timeout_s: float = 30.0,
) -> tuple[subprocess.Popen, ServeClient]:
    """Launch ``repro serve`` and wait until its socket answers ping."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        env=env or daemon_env(state_dir),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = ServeClient(state_dir / "serve.sock", reconnect_s=boot_timeout_s)
    try:
        client.ping()
    except Exception:
        proc.kill()
        out, _ = proc.communicate(timeout=10)
        raise AssertionError(f"daemon never came up; output:\n{out}")
    return proc, client


def stop_daemon(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        pass


def child_pids(pid: int) -> list[int]:
    """Direct children of ``pid`` (worker processes), via /proc."""
    children: list[int] = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # field 4 of /proc/<pid>/stat is ppid (comm may contain spaces,
        # so split after the closing paren).
        fields = stat.rsplit(")", 1)[-1].split()
        if len(fields) > 1 and int(fields[1]) == pid:
            children.append(int(entry.name))
    return children


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def wait_until(predicate, *, timeout_s: float, what: str, poll_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    raise AssertionError(f"timed out after {timeout_s:.1f}s waiting for {what}")
