"""Tests for cell archetypes (repro.liberty.cells)."""

import pytest

from repro.errors import LibraryError
from repro.liberty.cells import (
    CellFunction,
    PinSpec,
    input_pin_names,
    output_pin_name,
)
from repro.liberty.presets import make_twelve_track_library


@pytest.fixture(scope="module")
def lib():
    return make_twelve_track_library()


class TestCellFunction:
    def test_sequential_flags(self):
        assert CellFunction.DFF.is_sequential
        assert CellFunction.MEMORY.is_sequential
        assert not CellFunction.NAND2.is_sequential

    def test_macro_flags(self):
        assert CellFunction.MEMORY.is_macro
        assert not CellFunction.DFF.is_macro

    def test_input_counts(self):
        assert CellFunction.INV.input_count == 1
        assert CellFunction.NAND2.input_count == 2
        assert CellFunction.MUX2.input_count == 3
        assert CellFunction.AOI21.input_count == 3

    def test_every_function_has_transfer_factor(self):
        for fn in CellFunction:
            assert 0.0 < fn.switching_transfer <= 1.0

    def test_xor_propagates_more_than_and(self):
        assert (
            CellFunction.XOR2.switching_transfer
            > CellFunction.AND2.switching_transfer
        )

    def test_pin_names(self):
        assert input_pin_names(CellFunction.INV) == ("A",)
        assert input_pin_names(CellFunction.NAND3) == ("A", "B", "C")
        assert input_pin_names(CellFunction.DFF) == ("D",)
        assert output_pin_name(CellFunction.DFF) == "Q"
        assert output_pin_name(CellFunction.NAND2) == "Y"


class TestPinSpec:
    def test_rejects_bad_direction(self):
        with pytest.raises(LibraryError):
            PinSpec("A", "bidir")

    def test_rejects_negative_capacitance(self):
        with pytest.raises(LibraryError):
            PinSpec("A", "input", capacitance_ff=-1.0)


class TestCellType:
    def test_output_pin_found(self, lib):
        inv = lib.get(CellFunction.INV, 1)
        assert inv.output_pin == "Y"

    def test_input_pins_ordered(self, lib):
        nand = lib.get(CellFunction.NAND2, 1)
        assert nand.input_pins == ("A", "B")

    def test_clock_pin_only_on_sequential(self, lib):
        dff = lib.get(CellFunction.DFF, 1)
        inv = lib.get(CellFunction.INV, 1)
        assert dff.clock_pin == "CK"
        assert inv.clock_pin is None

    def test_input_capacitance_lookup(self, lib):
        nand = lib.get(CellFunction.NAND2, 1)
        assert nand.input_capacitance_ff("A") > 0
        with pytest.raises(LibraryError):
            nand.input_capacitance_ff("Z")

    def test_arc_to_finds_combinational_arc(self, lib):
        nand = lib.get(CellFunction.NAND2, 1)
        arc = nand.arc_to("Y", "A")
        assert arc is not None
        assert arc.kind == "combinational"
        assert nand.arc_to("Y", "Z") is None

    def test_setup_arc_not_returned_as_combinational(self, lib):
        dff = lib.get(CellFunction.DFF, 1)
        assert dff.arc_to("Q", "D") is None  # D->Q is a setup arc
        assert dff.arc_to("Q", "CK") is not None  # clk-to-q

    def test_worst_arc_exists(self, lib):
        for cell in lib.cells:
            arc = cell.worst_arc_to_output()
            assert arc.kind in ("combinational", "clk_to_q")

    def test_area_positive_and_geometry_consistent(self, lib):
        for cell in lib.cells:
            assert cell.area_um2 == pytest.approx(
                cell.width_um * cell.height_um, rel=1e-6
            )
