"""Tests for wire models and delay calculation (repro.timing.delaycalc)."""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import make_library_pair
from repro.netlist.core import Netlist, PortDirection
from repro.timing.delaycalc import (
    DelayCalculator,
    FanoutWireModel,
    PlacementWireModel,
    steiner_correction,
)


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


def chain(lib, n=3, place=True):
    """in -> INV x n, linearly placed 10um apart."""
    nl = Netlist("chain")
    nl.add_port("din", PortDirection.INPUT)
    prev = "din"
    for i in range(n):
        inst = nl.add_instance(f"i{i}", lib.get(CellFunction.INV, 1))
        if place:
            inst.x_um, inst.y_um = 10.0 * i, 0.0
        net = nl.add_net(f"n{i}")
        nl.connect(prev, f"i{i}", "A")
        nl.connect(f"n{i}", f"i{i}", "Y")
        prev = f"n{i}"
    return nl


class TestSteinerCorrection:
    def test_two_pin_nets_uncorrected(self):
        assert steiner_correction(1) == 1.0
        assert steiner_correction(2) == 1.0

    def test_monotone_in_fanout(self):
        values = [steiner_correction(f) for f in range(2, 20)]
        assert values == sorted(values)


class TestFanoutWireModel:
    def test_length_grows_with_fanout(self, pair):
        lib12, _ = pair
        nl = Netlist("fan")
        nl.add_port("din", PortDirection.INPUT)
        drv = nl.add_instance("drv", lib12.get(CellFunction.INV, 4))
        nl.connect("din", "drv", "A")
        nl.add_net("out")
        nl.connect("out", "drv", "Y")
        for i in range(6):
            nl.add_instance(f"s{i}", lib12.get(CellFunction.INV, 1))
            nl.connect("out", f"s{i}", "A")
        model = FanoutWireModel(lib12)
        para6 = model.extract(nl, nl.nets["out"])
        nl.disconnect("s5", "A")
        para5 = model.extract(nl, nl.nets["out"])
        assert para6.length_um > para5.length_um
        assert para6.total_cap_ff > para5.total_cap_ff

    def test_all_sinks_share_delay(self, pair):
        lib12, _ = pair
        nl = chain(lib12, place=False)
        model = FanoutWireModel(lib12)
        para = model.extract(nl, nl.nets["n0"])
        assert len(set(para.sink_delay_ns.values())) == 1


class TestPlacementWireModel:
    def test_length_matches_manhattan(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        model = PlacementWireModel(lib12)
        para = model.extract(nl, nl.nets["n0"])
        # driver at x=10 (center ~10.2), sink at x=20 (center ~20.2)
        assert para.length_um == pytest.approx(10.0, abs=0.5)
        assert para.miv_count == 0

    def test_cross_tier_net_counts_mivs(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        nl.instances["i1"].tier = 1
        model = PlacementWireModel(lib12)
        para = model.extract(nl, nl.nets["n0"])  # i0(t0) -> i1(t1)
        assert para.miv_count >= 1
        same_tier = model.extract(nl, nl.nets["n1"])  # i1(t1) -> i2(t0)
        assert same_tier.miv_count >= 1

    def test_miv_adds_capacitance_and_delay(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        model = PlacementWireModel(lib12)
        flat = model.extract(nl, nl.nets["n0"])
        nl.instances["i1"].tier = 1
        crossed = model.extract(nl, nl.nets["n0"])
        assert crossed.total_cap_ff > flat.total_cap_ff
        sink = ("i1", "A")
        assert crossed.sink_delay_ns[sink] > flat.sink_delay_ns[sink]

    def test_farther_sink_has_larger_delay(self, pair):
        lib12, _ = pair
        nl = Netlist("y")
        nl.add_port("din", PortDirection.INPUT)
        drv = nl.add_instance("drv", lib12.get(CellFunction.INV, 4))
        drv.x_um, drv.y_um = 0.0, 0.0
        nl.connect("din", "drv", "A")
        nl.add_net("out")
        nl.connect("out", "drv", "Y")
        near = nl.add_instance("near", lib12.get(CellFunction.INV, 1))
        near.x_um, near.y_um = 5.0, 0.0
        far = nl.add_instance("far", lib12.get(CellFunction.INV, 1))
        far.x_um, far.y_um = 80.0, 0.0
        nl.connect("out", "near", "A")
        nl.connect("out", "far", "A")
        para = PlacementWireModel(lib12).extract(nl, nl.nets["out"])
        assert para.sink_delay_ns[("far", "A")] > para.sink_delay_ns[("near", "A")]


class TestDelayCalculator:
    def make_calc(self, pair, nl):
        lib12, lib9 = pair
        return DelayCalculator(
            nl, PlacementWireModel(lib12), {lib12.name: lib12, lib9.name: lib9}
        )

    def test_caching_and_invalidate(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        calc = self.make_calc(pair, nl)
        p1 = calc.net_parasitics(nl.nets["n0"])
        assert calc.net_parasitics(nl.nets["n0"]) is p1
        calc.invalidate("n0")
        assert calc.net_parasitics(nl.nets["n0"]) is not p1

    def test_output_load(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        calc = self.make_calc(pair, nl)
        load = calc.output_load_ff(nl.instances["i0"], "Y")
        assert load > lib12.get(CellFunction.INV, 1).input_capacitance_ff("A")

    def test_homogeneous_derates_are_unity(self, pair):
        lib12, _ = pair
        nl = chain(lib12)
        calc = self.make_calc(pair, nl)
        d, s = calc.input_derates(nl.instances["i1"], "A")
        assert d == 1.0 and s == 1.0

    def test_heterogeneous_input_derate_applied(self, pair):
        """A 12T cell driven from the 0.81V tier sees delay derate > 1."""
        lib12, lib9 = pair
        nl = chain(lib12)
        nl.rebind("i0", lib9.equivalent_of(nl.instances["i0"].cell))
        nl.instances["i0"].tier = 1
        calc = self.make_calc(pair, nl)
        d, s = calc.input_derates(nl.instances["i1"], "A")
        assert d > 1.0
        assert s > 1.0
        # and the converse direction speeds up
        d2, s2 = calc.input_derates(nl.instances["i0"], "A")
        assert d2 == 1.0  # driven by a primary input, no derate

    def test_setup_time_positive(self, pair):
        lib12, _ = pair
        dff = lib12.get(CellFunction.DFF, 1)
        nl = chain(lib12)
        calc = self.make_calc(pair, nl)
        assert calc.setup_time(dff, 0.02) > 0
