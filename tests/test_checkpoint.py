"""Checkpoint serialization, checksum integrity, and stage resume."""

import json

import pytest

from repro.errors import CheckpointError, FlowError
from repro.flow import run_flow_2d
from repro.flow.pipeline import FlowContext, Stage, execute_flow
from repro.integrity import (
    design_from_dict,
    design_to_dict,
    latest_valid_checkpoint,
    library_from_spec,
    load_checkpoint,
    write_checkpoint,
)
from repro.liberty.presets import make_twelve_track_library

SCALE = 0.12


@pytest.fixture(scope="module")
def finished():
    design, result = run_flow_2d(
        "aes", make_twelve_track_library(), period_ns=1.0, scale=SCALE,
        seed=4,
    )
    return design, result


class TestSerialization:
    def test_roundtrip_is_byte_identical(self, finished):
        design, _ = finished
        once = design_to_dict(design)
        again = design_to_dict(design_from_dict(once))
        assert (json.dumps(once, sort_keys=True)
                == json.dumps(again, sort_keys=True))

    def test_rebuilt_design_validates(self, finished):
        design, _ = finished
        rebuilt = design_from_dict(design_to_dict(design))
        rebuilt.netlist.validate()
        assert rebuilt.name == design.name
        assert rebuilt.clock_report == design.clock_report

    def test_caller_libs_are_bound_verbatim(self, finished):
        design, _ = finished
        lib = design.tier_libs[0]
        rebuilt = design_from_dict(design_to_dict(design), tier_libs={0: lib})
        assert rebuilt.tier_libs[0] is lib
        inst = next(i for i in rebuilt.netlist.instances.values()
                    if not i.cell.is_macro)
        assert any(c is inst.cell for c in lib.cells)

    def test_library_from_spec_variants(self):
        lib = library_from_spec(
            {"name": "28nm_12T", "tracks": 12, "vdd_v": 0.9}
        )
        assert lib.name == "28nm_12T"
        low = library_from_spec(
            {"name": "28nm_9T_0.55V", "tracks": 9, "vdd_v": 0.55}
        )
        assert low.vdd_v == 0.55


class TestEnvelope:
    def test_write_and_load(self, finished, tmp_path):
        design, _ = finished
        path = write_checkpoint(tmp_path, 3, "optimize", design)
        assert path.name == "03_optimize.json"
        stage, loaded = load_checkpoint(path)
        assert stage == "optimize"
        assert (json.dumps(design_to_dict(loaded), sort_keys=True)
                == json.dumps(design_to_dict(design), sort_keys=True))

    def test_tampered_payload_is_rejected(self, finished, tmp_path):
        design, _ = finished
        path = write_checkpoint(tmp_path, 0, "synthesis", design)
        env = json.loads(path.read_text())
        env["design"]["target_period_ns"] = 99.0
        path.write_text(json.dumps(env))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_truncated_file_is_rejected(self, finished, tmp_path):
        design, _ = finished
        path = write_checkpoint(tmp_path, 0, "synthesis", design)
        path.write_text(path.read_text()[:100])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_fallback_walks_past_corrupt(self, finished, tmp_path):
        design, _ = finished
        names = ["a", "b", "c"]
        for i, n in enumerate(names):
            write_checkpoint(tmp_path, i, n, design)
        (tmp_path / "01_b.json").write_text("garbage")
        found = latest_valid_checkpoint(tmp_path, names, 2, None)
        assert found is not None and found[0] == 0
        assert found[1].name == design.name

    def test_fallback_none_when_all_bad(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path, ["a", "b"], 2, None) is None


class TestResume:
    def test_resume_is_byte_identical(self, tmp_path):
        lib = make_twelve_track_library()
        kw = dict(period_ns=1.0, scale=SCALE, seed=4,
                  checkpoint_dir=str(tmp_path))
        _, full = run_flow_2d("aes", lib, **kw)
        _, resumed = run_flow_2d("aes", lib, **kw, from_stage="cts")
        assert (json.dumps(full.to_dict(), sort_keys=True)
                == json.dumps(resumed.to_dict(), sort_keys=True))

    def test_resume_falls_back_past_corrupt_stage(self, tmp_path):
        lib = make_twelve_track_library()
        kw = dict(period_ns=1.0, scale=SCALE, seed=4,
                  checkpoint_dir=str(tmp_path))
        _, full = run_flow_2d("aes", lib, **kw)
        (tmp_path / "03_optimize.json").write_text("garbage")
        _, resumed = run_flow_2d("aes", lib, **kw, from_stage="cts")
        assert (json.dumps(full.to_dict(), sort_keys=True)
                == json.dumps(resumed.to_dict(), sort_keys=True))

    def test_from_stage_requires_checkpoint_dir(self):
        lib = make_twelve_track_library()
        with pytest.raises(FlowError, match="checkpoint-dir"):
            run_flow_2d("aes", lib, period_ns=1.0, scale=SCALE, seed=4,
                        from_stage="cts")

    def test_unknown_stage_rejected(self, tmp_path):
        lib = make_twelve_track_library()
        with pytest.raises(FlowError, match="unknown stage"):
            run_flow_2d("aes", lib, period_ns=1.0, scale=SCALE, seed=4,
                        checkpoint_dir=str(tmp_path), from_stage="routing")


class TestDriver:
    def test_duplicate_stage_names_rejected(self):
        s = [Stage("a", lambda ctx: None), Stage("a", lambda ctx: None)]
        with pytest.raises(FlowError, match="duplicate"):
            execute_flow(s)

    def test_stages_run_in_order(self):
        seen = []
        s = [
            Stage("a", lambda ctx: seen.append("a")),
            Stage("b", lambda ctx: seen.append("b")),
        ]
        ctx = execute_flow(s)
        assert seen == ["a", "b"]
        assert isinstance(ctx, FlowContext)


class TestStrictOffEquivalence:
    def test_strict_matches_off_byte_for_byte(self):
        lib = make_twelve_track_library()
        kw = dict(period_ns=1.0, scale=SCALE, seed=4)
        _, off = run_flow_2d("aes", lib, **kw, check="off")
        _, strict = run_flow_2d("aes", lib, **kw, check="strict")
        assert (json.dumps(off.to_dict(), sort_keys=True)
                == json.dumps(strict.to_dict(), sort_keys=True))
