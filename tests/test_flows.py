"""Integration tests: the three flows end to end at small scale.

These are the expensive tests of the suite (a few seconds each); they
pin down the *structural* paper claims that don't need calibration:
validity of the produced databases, tier properties, the presence of the
heterogeneous mechanisms, and the Table V ablation direction.
"""

import pytest

from repro.flow import (
    finalize_design,
    run_flow_2d,
    run_flow_hetero_3d,
    run_flow_pin3d,
)
from repro.liberty.presets import make_library_pair

SCALE = 0.4
SEED = 23
PERIOD = 1.1  # near the 12-track 2-D maximum at this scale


@pytest.fixture(scope="module")
def pair():
    return make_library_pair()


@pytest.fixture(scope="module")
def flow_2d(pair):
    lib12, _ = pair
    return run_flow_2d("cpu", lib12, period_ns=PERIOD, scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def flow_3d(pair):
    lib12, _ = pair
    return run_flow_pin3d("cpu", lib12, period_ns=PERIOD, scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def flow_het(pair):
    lib12, lib9 = pair
    return run_flow_hetero_3d(
        "cpu", lib12, lib9, period_ns=PERIOD, scale=SCALE, seed=SEED
    )


class TestFlow2D:
    def test_database_valid(self, flow_2d):
        design, result = flow_2d
        design.netlist.validate()
        assert design.floorplan is not None
        assert design.clock_report is not None

    def test_everything_on_tier0(self, flow_2d):
        design, _ = flow_2d
        assert design.netlist.tiers_used() == (0,)

    def test_result_fields_consistent(self, flow_2d):
        _, r = flow_2d
        assert r.si_area_mm2 == pytest.approx(r.footprint_mm2)
        assert r.miv_count == 0
        assert r.effective_delay_ns == pytest.approx(r.period_ns - r.wns_ns)
        assert r.pdp_pj == pytest.approx(
            r.total_power_mw * r.effective_delay_ns
        )
        assert r.total_power_mw > 0
        assert 0.3 < r.density < 0.95

    def test_memory_net_stats_present_for_cpu(self, flow_2d):
        _, r = flow_2d
        assert r.memory_nets is not None
        assert r.memory_nets.input_net_latency_ps >= 0


class TestFlowPin3D:
    def test_two_tiers_used(self, flow_3d):
        design, _ = flow_3d
        assert design.netlist.tiers_used() == (0, 1)

    def test_same_library_both_tiers(self, flow_3d):
        design, _ = flow_3d
        libs = {
            i.cell.library_name for i in design.netlist.instances.values()
        }
        assert libs == {"28nm_12T"}

    def test_si_area_is_twice_footprint(self, flow_3d):
        _, r = flow_3d
        assert r.si_area_mm2 == pytest.approx(2 * r.footprint_mm2)

    def test_mivs_reported(self, flow_3d):
        _, r = flow_3d
        assert r.miv_count > 0
        assert r.cut_nets > 0

    def test_3d_shortens_wirelength(self, flow_2d, flow_3d):
        _, r2d = flow_2d
        _, r3d = flow_3d
        assert r3d.wirelength_mm < r2d.wirelength_mm

    def test_legal_placement_per_tier(self, flow_3d):
        design, _ = flow_3d
        for inst in design.netlist.instances.values():
            if inst.cell.is_macro:
                continue
            pitch = design.library_for_tier(inst.tier).cell_height_um
            row = round(inst.y_um / pitch)
            assert inst.y_um == pytest.approx(row * pitch, abs=1e-6)


class TestFlowHetero:
    def test_tier_libraries(self, flow_het):
        design, _ = flow_het
        libs_by_tier = {}
        for inst in design.netlist.instances.values():
            if inst.cell.is_macro:
                continue
            libs_by_tier.setdefault(inst.tier, set()).add(
                inst.cell.library_name
            )
        assert libs_by_tier[0] == {"28nm_12T"}
        assert libs_by_tier[1] == {"28nm_9T"}

    def test_memory_macros_alternate_tiers(self, flow_het):
        """Macros spread over both dies so blockage stays balanced."""
        design, _ = flow_het
        tiers = sorted(m.tier for m in design.netlist.memory_macros())
        assert set(tiers) <= {0, 1}
        if len(tiers) >= 2:
            assert len(set(tiers)) == 2

    def test_cell_area_smaller_than_homogeneous(self, flow_het, flow_3d):
        """Remapping to 9T shrinks total cell area (the ~12% saving)."""
        het, _ = flow_het
        homo, _ = flow_3d
        het_std = het.netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        homo_std = homo.netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        assert het_std < homo_std

    def test_critical_path_prefers_fast_tier(self, flow_het):
        """Table VIII: most critical-path cells on the 12-track die."""
        _, r = flow_het
        cp = r.critical_path
        assert cp.cells_on_tier(0) >= cp.cells_on_tier(1)

    def test_clock_tree_top_die_heavy(self, flow_het):
        """Table VIII: >75% of hetero clock buffers on the top die."""
        _, r = flow_het
        assert r.clock.tier_fraction(1) > 0.5

    def test_average_stage_delay_slower_on_top(self, flow_het):
        _, r = flow_het
        cp = r.critical_path
        if cp.cells_on_tier(1) >= 2 and cp.cells_on_tier(0) >= 2:
            assert (
                cp.average_cell_delay_on_tier(1)
                > cp.average_cell_delay_on_tier(0)
            )

    def test_incompatible_voltage_pair_rejected(self, pair):
        import dataclasses

        lib12, lib9 = pair
        bad = dataclasses.replace(
            lib9, vdd_v=0.5, _cells=lib9._cells, _by_function=lib9._by_function
        )
        with pytest.raises(ValueError):
            run_flow_hetero_3d(
                "aes", lib12, bad, period_ns=1.0, scale=0.2, seed=SEED
            )


class TestTableVAblation:
    """Hetero-Pin-3D beats plain Pin-3D on the same heterogeneous stack."""

    @pytest.fixture(scope="class")
    def plain_and_enhanced(self, pair):
        lib12, lib9 = pair
        tight = 1.0
        plain = run_flow_hetero_3d(
            "cpu", lib12, lib9, period_ns=tight, scale=SCALE, seed=SEED,
            timing_partitioning=False, hetero_cts=False, repartition=False,
        )
        enhanced = run_flow_hetero_3d(
            "cpu", lib12, lib9, period_ns=tight, scale=SCALE, seed=SEED,
        )
        return plain, enhanced

    def test_enhancements_improve_wns(self, plain_and_enhanced):
        (_, plain), (_, enhanced) = plain_and_enhanced
        assert enhanced.wns_ns >= plain.wns_ns

    def test_wirelength_comparable(self, plain_and_enhanced):
        """Table V: WL is essentially unchanged (3.22 vs 3.23 mm)."""
        (_, plain), (_, enhanced) = plain_and_enhanced
        assert enhanced.wirelength_mm < plain.wirelength_mm * 1.35
