"""Tests for arbitrary track variants and the mix explorer."""

import pytest

from repro.liberty.cells import CellFunction
from repro.liberty.presets import (
    NINE_TRACK_CORNER,
    TWELVE_TRACK_CORNER,
    make_library_pair,
    make_track_variant,
)


class TestTrackVariant:
    def test_anchor_points_match_presets(self):
        """At 9 and 12 tracks the variant reproduces the calibrated pair."""
        lib12, lib9 = make_library_pair()
        v12 = make_track_variant(12)
        v9 = make_track_variant(9)
        for preset, variant in ((lib12, v12), (lib9, v9)):
            assert variant.vdd_v == pytest.approx(preset.vdd_v)
            inv_p = preset.get(CellFunction.INV, 1)
            inv_v = variant.get(CellFunction.INV, 1)
            assert inv_v.area_um2 == pytest.approx(inv_p.area_um2)
            assert inv_v.leakage_mw == pytest.approx(inv_p.leakage_mw)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            make_track_variant(6)
        with pytest.raises(ValueError):
            make_track_variant(15)

    def test_monotone_in_tracks(self):
        """Taller cells: bigger, faster, hungrier, leakier."""
        libs = [make_track_variant(t) for t in (8, 9, 10, 12)]
        invs = [lib.get(CellFunction.INV, 1) for lib in libs]
        areas = [c.area_um2 for c in invs]
        assert areas == sorted(areas)
        delays = [
            c.worst_arc_to_output().delay.lookup(0.02, 8.0) for c in invs
        ]
        assert delays == sorted(delays, reverse=True)
        leaks = [c.leakage_mw for c in invs]
        assert leaks == sorted(leaks)
        energies = [c.internal_energy_pj for c in invs]
        assert energies == sorted(energies)

    def test_neighbour_tracks_are_stackable(self):
        """Adjacent variants satisfy the Section II-B voltage rule."""
        for fast, slow in ((12, 10), (12, 9), (10, 8), (12, 8)):
            a = make_track_variant(fast)
            b = make_track_variant(slow)
            assert a.voltage_compatible_with(b), (fast, slow)
            assert a.slew_ranges_overlap(b)

    def test_explicit_voltage_scaling(self):
        nominal = make_track_variant(9)
        low = make_track_variant(9, vdd_v=0.60)
        inv_n = nominal.get(CellFunction.INV, 1)
        inv_l = low.get(CellFunction.INV, 1)
        # slower, cheaper, far less leaky at the lower rail
        d_n = inv_n.worst_arc_to_output().delay.lookup(0.02, 8.0)
        d_l = inv_l.worst_arc_to_output().delay.lookup(0.02, 8.0)
        assert d_l > 1.3 * d_n
        assert inv_l.internal_energy_pj < inv_n.internal_energy_pj
        assert inv_l.leakage_mw < inv_n.leakage_mw

    def test_vdd_near_vth_rejected(self):
        with pytest.raises(ValueError):
            make_track_variant(9, vdd_v=0.33)

    def test_names_distinguish_voltage_variants(self):
        a = make_track_variant(9)
        b = make_track_variant(9, vdd_v=0.70)
        assert a.name != b.name


class TestExplorer:
    def test_explore_small_set(self):
        from repro.experiments.explorer import explore_track_pairs

        pairs = explore_track_pairs(
            "aes", (9, 12), period_ns=0.7, scale=0.2, seed=8,
            opt_iterations=4,
        )
        assert len(pairs) == 1
        best = pairs[0]
        assert best.label == "9+12T"
        assert best.compatible
        assert best.result is not None
        assert best.ppc > 0

    def test_sorted_by_ppc(self):
        from repro.experiments.explorer import explore_track_pairs

        pairs = explore_track_pairs(
            "aes", (8, 10, 12), period_ns=0.7, scale=0.2, seed=8,
            opt_iterations=4,
        )
        ran = [p.ppc for p in pairs if p.result is not None]
        assert ran == sorted(ran, reverse=True)
