"""End-to-end daemon tests over the real Unix socket, one subprocess each.

Each test boots an actual ``repro serve`` process and talks to it with
the client library -- intake, dedup, backpressure, graceful drain,
``kill -9`` recovery, the hang watchdog, and dropped-response retry
semantics all exercised exactly the way a user would hit them.
"""

from __future__ import annotations

import os
import signal
import subprocess
import time

import pytest

from repro.serve.journal import replay_file
from tests.serve_utils import (
    child_pids,
    daemon_env,
    pid_alive,
    start_daemon,
    stop_daemon,
    wait_until,
)

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX-only daemon tests"
)


@pytest.fixture()
def state_dir(tmp_path):
    return tmp_path / "serve"


def _probe(nonce, **extra):
    return {"kind": "probe", "nonce": nonce, **extra}


def test_submit_status_result_and_dedup(state_dir):
    proc, client = start_daemon(state_dir, args=("--workers", "1"))
    try:
        first = client.submit(_probe("n1", payload={"v": 7}))
        assert first["ok"] and not first["deduped"]
        dup = client.submit(_probe("n1", payload={"v": 7}))
        assert dup["deduped"] and dup["job_id"] == first["job_id"]
        distinct = client.submit(_probe("n2", payload={"v": 7}))
        assert distinct["job_id"] != first["job_id"]

        view = client.wait(first["job_id"], timeout_s=60)
        assert view["state"] == "done"
        assert view["result"]["echo"] == {"v": 7}
        stats = client.stats()
        assert stats["stats"]["deduped"] == 1
        assert stats["stats"]["submitted"] == 2
    finally:
        stop_daemon(proc)


def test_backpressure_busy_then_accepts_again(state_dir):
    proc, client = start_daemon(
        state_dir, args=("--workers", "1", "--queue-max", "1")
    )
    try:
        # Occupy the single worker, then fill the single pending slot.
        running = client.submit(_probe("slow", seconds=20.0))
        wait_until(
            lambda: client.status(running["job_id"])["state"] == "running",
            timeout_s=30, what="slow probe to be claimed",
        )
        queued = client.submit(_probe("queued"))
        assert queued["ok"]
        rejected = client.submit(_probe("overflow"))
        assert not rejected["ok"]
        assert rejected["code"] == "busy"
        assert rejected["retry_after"] > 0
    finally:
        stop_daemon(proc)


def test_sigterm_drains_and_journal_survives(state_dir):
    proc, client = start_daemon(
        state_dir, args=("--workers", "1", "--drain-timeout", "30")
    )
    job_id = None
    try:
        job_id = client.submit(_probe("drainme", seconds=1.0))["job_id"]
        wait_until(
            lambda: client.status(job_id)["state"] == "running",
            timeout_s=30, what="probe to start",
        )
        proc.send_signal(signal.SIGTERM)
        # Draining: the in-flight job finishes, then a clean exit 0.
        assert proc.wait(timeout=60) == 0
    finally:
        stop_daemon(proc)
    records, _, dropped = replay_file(state_dir / "journal.wal")
    assert dropped == 0
    assert any(
        r["type"] == "complete" and r["job_id"] == job_id for r in records
    )
    # The drained daemon cleaned up its socket and pidfile.
    assert not (state_dir / "serve.sock").exists()
    assert not (state_dir / "daemon.pid").exists()

    # A restarted daemon still serves the completed result.
    proc2, client2 = start_daemon(state_dir, args=("--workers", "1"))
    try:
        view = client2.result(job_id)
        assert view["state"] == "done"
        assert client2.stats()["stats"]["recovered"] == 0
    finally:
        stop_daemon(proc2)


def test_kill_dash_nine_recovers_in_flight_job(state_dir):
    proc, client = start_daemon(state_dir, args=("--workers", "1"))
    try:
        done_id = client.submit(_probe("finished"))["job_id"]
        client.wait(done_id, timeout_s=60)
        victim_id = client.submit(_probe("victim", seconds=60.0))["job_id"]
        wait_until(
            lambda: client.status(victim_id)["state"] == "running",
            timeout_s=30, what="victim probe to be claimed",
        )
        workers = child_pids(proc.pid)
        assert workers, "daemon should have spawned worker processes"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        # No orphans: pdeathsig took the workers down with the daemon.
        wait_until(
            lambda: not any(pid_alive(pid) for pid in workers),
            timeout_s=10, what="orphaned workers to die",
        )
    finally:
        stop_daemon(proc)

    proc2, client2 = start_daemon(state_dir, args=("--workers", "1"))
    try:
        stats = client2.stats()["stats"]
        assert stats["recovered"] == 1
        # Completed work survived; the in-flight job replays and reruns
        # (60s sleep -- requeued and pending/running, not lost).
        assert client2.result(done_id)["state"] == "done"
        assert client2.status(victim_id)["state"] in ("pending", "running")
        # Resubmitting the same spec dedups onto the recovered job.
        again = client2.submit(_probe("victim", seconds=60.0))
        assert again["deduped"] and again["job_id"] == victim_id
    finally:
        stop_daemon(proc2)


def test_watchdog_fails_hung_job_over_budget(state_dir):
    env = daemon_env(
        state_dir,
        REPRO_SERVE_JOB_TIMEOUT_S="1",
        REPRO_SERVE_RESTART_BUDGET="0",
    )
    proc, client = start_daemon(state_dir, args=("--workers", "1"), env=env)
    try:
        job_id = client.submit(_probe("hung", seconds=120.0))["job_id"]
        view = client.wait(job_id, timeout_s=90)
        assert view["state"] == "failed"
        assert view["error"]["error_type"] == "CrashLoop"
        stats = client.stats()["stats"]
        assert stats["hangs_detected"] >= 1
        assert stats["worker_respawns"] >= 1
    finally:
        stop_daemon(proc)


def test_stale_heartbeat_respawns_worker_and_job_completes(state_dir, tmp_path):
    env = daemon_env(
        state_dir,
        REPRO_SERVE_HEARTBEAT_S="0.2",
        REPRO_SERVE_RESTART_BUDGET="5",
        # Wedge the first worker's heartbeat thread after a few beats;
        # the shared fault state makes times=1 global, so the respawned
        # worker beats normally and finishes the job.
        REPRO_FAULTS="site=heartbeat,kind=hang,seconds=300,after=3,times=1",
        REPRO_FAULTS_STATE=str(tmp_path / "fault-state"),
    )
    proc, client = start_daemon(state_dir, args=("--workers", "1"), env=env)
    try:
        job_id = client.submit(_probe("survivor", seconds=3.0))["job_id"]
        view = client.wait(job_id, timeout_s=90)
        assert view["state"] == "done"
        stats = client.stats()["stats"]
        assert stats["hangs_detected"] >= 1
        assert stats["requeued"] >= 1
    finally:
        stop_daemon(proc)


def test_dropped_response_is_safe_to_retry(state_dir, tmp_path):
    env = daemon_env(
        state_dir,
        # The daemon drops exactly one submit response mid-send.
        REPRO_FAULTS="site=client_disconnect,request=submit,kind=raise,times=1",
        REPRO_FAULTS_STATE=str(tmp_path / "fault-state"),
    )
    proc, client = start_daemon(state_dir, args=("--workers", "1"), env=env)
    try:
        # The client's retry reconnects; the server-side journal already
        # has the job, so the retried submit dedups onto it -- the job
        # is acknowledged exactly once even though the first ack died.
        response = client.submit(_probe("acked"))
        assert response["ok"]
        assert response["deduped"] is True  # first (dropped) submit won
        assert client.stats()["stats"]["submitted"] == 1
        client.wait(response["job_id"], timeout_s=60)
    finally:
        stop_daemon(proc)
