"""End-to-end contracts of the design-space explorer.

Small real flows (tiny scale, coarse period grid) prove the three perf
layers are *identity-preserving*: prefix-seeded flows byte-match cold
flows, warm reruns and resumes run zero flow stages, and pruning only
ever skips configs a front member provably dominates.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import CheckpointError
from repro.experiments.dse import (
    DseConfig,
    ExploreSpec,
    LatticeSpec,
    ParetoFront,
    explore,
)
from repro.experiments.dse.search import (
    PREFIX_STAGES,
    _maybe_prune,
    _objective_vector,
    load_report,
    period_grid,
    resolve_spec,
)
from repro.experiments.dse.space import build_library
from repro.experiments.telemetry import get_telemetry, reset_telemetry
from repro.integrity.checkpoint import rebind_checkpoint_tier_library

TINY = dict(
    design="aes", scale=0.08, opt_iterations=2, period_steps=5,
)


def tiny_spec(**overrides) -> ExploreSpec:
    kw = dict(TINY)
    lattice = overrides.pop("lattice", None) or LatticeSpec(
        slow_tracks=(8,), slow_vdd=(0.70, 0.90),
        tier_caps=(0.25,), fm_tolerances=(0.10,),
    )
    kw.update(overrides)
    return ExploreSpec(lattice=lattice, **kw)


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_telemetry()
    return tmp_path


def test_optimized_front_matches_naive_byte_for_byte(fresh_cache, monkeypatch):
    """Prefix reuse + warm starts + pruning change cost only: the
    Pareto front artifact is byte-identical to the naive explorer's."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(fresh_cache / "naive"))
    naive = explore(tiny_spec(
        prune=False, reuse_prefix=False, warm_periods=False,
    ))
    naive_tel = get_telemetry()
    assert naive_tel.flow_stages_run > 0

    monkeypatch.setenv("REPRO_CACHE_DIR", str(fresh_cache / "opt"))
    reset_telemetry()
    optimized = explore(tiny_spec())
    tel = get_telemetry()
    assert tel.prefix_stages_reused > 0, "second config never reused the prefix"
    # Every reused prefix stage is a stage not executed: the optimized
    # run averages fewer stages per flow.  (Total stages can tie on a
    # 5-point grid, where a warm start may probe one extra period.)
    assert (tel.flow_stages_run / tel.flows_run
            < naive_tel.flow_stages_run / naive_tel.flows_run)
    assert optimized.front_json() == naive.front_json()


def test_warm_rerun_and_resume_run_zero_flow_stages(fresh_cache):
    spec = tiny_spec()
    first = explore(spec)
    assert first.rows and first.ok

    reset_telemetry()
    warm = explore(spec)
    tel = get_telemetry()
    assert tel.flows_run == 0 and tel.flow_stages_run == 0
    assert warm.front_json() == first.front_json()

    reset_telemetry()
    resumed = explore(spec, resume=True)
    tel = get_telemetry()
    assert tel.flows_run == 0 and tel.flow_stages_run == 0
    assert resumed.front_json() == first.front_json()


def test_interrupted_run_resumes_to_identical_front(fresh_cache):
    """Killing a run mid-way (simulated by deleting a manifest row)
    costs exactly the missing config on resume and converges on the
    same front bytes."""
    from repro.experiments import cache
    from repro.experiments.dse.search import _manifest_key

    spec = tiny_spec()
    full = explore(spec)
    assert len(full.rows) == 2

    mkey = _manifest_key(resolve_spec(spec))
    manifest = cache.load_manifest(mkey)
    dropped = sorted(manifest["rows"])[0]
    del manifest["rows"][dropped]
    manifest["complete"] = False
    cache.store_manifest(mkey, manifest)

    reset_telemetry()
    resumed = explore(spec, resume=True)
    tel = get_telemetry()
    # The dropped config re-evaluates from the result cache (flows all
    # disk hits), every other config is restored from the manifest.
    assert tel.flow_stages_run == 0
    assert dropped in resumed.rows
    assert resumed.front_json() == full.front_json()


def test_report_mode_reads_without_running(fresh_cache):
    spec = tiny_spec()
    assert load_report(spec) is None
    ran = explore(spec)
    reset_telemetry()
    loaded = load_report(spec)
    tel = get_telemetry()
    assert tel.flows_run == 0
    assert loaded is not None
    assert loaded.front_json() == ran.front_json()
    assert loaded.rows.keys() == ran.rows.keys()


def test_incompatible_configs_reported_never_run(fresh_cache):
    spec = tiny_spec(lattice=LatticeSpec(
        slow_tracks=(8,), slow_vdd=(0.62, 0.90),
        tier_caps=(0.25,), fm_tolerances=(0.10,),
    ))
    report = explore(spec)
    assert len(report.incompatible) == 1
    assert "0.3*V_DDH" in report.incompatible[0]["reason"]
    assert all("0.62" not in label for label in report.rows)


def test_prefix_checkpoint_rebinds_only_when_safe(fresh_cache, tmp_path):
    """The independence claim behind prefix reuse is *enforced*: a
    pre-partition checkpoint rebinding to a different slow library
    succeeds, while a post-partition checkpoint (instances already on
    the slow die) refuses loudly instead of silently mixing corners."""
    from repro.flow.hetero import run_flow_hetero_3d

    ckpt = tmp_path / "ckpts"
    fast = build_library(12, None)
    slow_a = build_library(8, 0.70)
    slow_b = build_library(8, 0.90)
    run_flow_hetero_3d(
        "aes", fast, slow_a, period_ns=1.2, scale=0.08,
        opt_iterations=2, checkpoint_dir=ckpt,
    )
    envelopes = {
        p.name: json.loads(p.read_text()) for p in ckpt.glob("*.json")
    }
    prefix_names = [
        f"{i:02d}_{stage}.json" for i, stage in enumerate(PREFIX_STAGES)
    ]
    for name in prefix_names:
        rebound = rebind_checkpoint_tier_library(envelopes[name], 1, slow_b)
        spec_entry = rebound["design"]["tier_libs"]["1"]
        assert spec_entry["name"] == slow_b.name
        assert rebound["checksum"] != envelopes[name]["checksum"]

    late = [n for n in sorted(envelopes) if n not in prefix_names]
    assert late, "flow produced no post-prefix checkpoints"
    with pytest.raises(CheckpointError, match="bound to"):
        rebind_checkpoint_tier_library(envelopes[late[-1]], 1, slow_b)


def test_suffix_reuse_serves_cached_flow_tail(fresh_cache, monkeypatch):
    """Evicting a (config, period) result while keeping the suffix
    cache forces re-evaluation down the fingerprint path: only the
    partitioning stage re-executes, and the tail comes back
    byte-identical from cache."""
    from repro.experiments import cache
    from repro.experiments.dse.search import (
        _flow_at_period,
        _result_cache_key,
    )

    monkeypatch.delenv("REPRO_CHECK", raising=False)
    spec = resolve_spec(tiny_spec())
    cfg = DseConfig(8, 0.70, 0.25, 0.10)
    period = period_grid(spec.design, spec.period_steps)[-1]
    cold = _flow_at_period(cfg, spec, period)
    tel = get_telemetry()
    assert tel.suffix_flows_reused == 0
    assert tel.flow_stages_run > 1

    rkey = _result_cache_key(cfg, spec, period)
    (cache.cache_dir() / f"{rkey}.json").unlink()

    reset_telemetry()
    again = _flow_at_period(cfg, spec, period)
    tel = get_telemetry()
    assert tel.suffix_flows_reused == 1
    # The prefix seeded synthesis + pseudo-place, the suffix cache
    # served everything after partitioning: one stage body ran.
    assert tel.flow_stages_run == 1
    assert again.to_dict() == cold.to_dict()


def test_partition_fingerprint_masks_parameter_echoes(tmp_path):
    """Two partition checkpoints differing only in the cap/fm parameter
    echoes fingerprint identically; any real state difference -- or a
    missing checkpoint -- does not."""
    from repro.experiments.dse.search import (
        _PARTITION_INDEX,
        _PARTITION_STAGE,
        _partition_fingerprint,
    )
    from repro.integrity.checkpoint import checkpoint_path

    def fingerprint(name: str, notes: dict, tiers: list) -> str | None:
        d = tmp_path / name
        d.mkdir()
        payload = {"design": {"tiers": tiers, "notes": notes}}
        checkpoint_path(d, _PARTITION_INDEX, _PARTITION_STAGE).write_text(
            json.dumps(payload)
        )
        return _partition_fingerprint(str(d))

    base = {"pinned_area_cap": 0.25, "fm_balance_tolerance": 0.10,
            "utilization_used": 0.82}
    a = fingerprint("a", base, [0, 1])
    b = fingerprint("b", {**base, "pinned_area_cap": 0.30,
                          "pinned_cells": 5.0}, [0, 1])
    c = fingerprint("c", base, [1, 0])
    d = fingerprint("d", {**base, "utilization_used": 0.70}, [0, 1])
    assert a is not None
    assert a == b, "parameter echoes leaked into the fingerprint"
    assert a != c and a != d
    assert _partition_fingerprint(str(tmp_path / "missing")) is None


def test_pruning_skips_are_certified_and_counted(fresh_cache):
    """Synthetic rows: a candidate whose every in-range neighbor is far
    worse than a front member must be pruned, with the certificate
    recorded; one with any potentially-better neighbor must not."""
    spec = resolve_spec(tiny_spec(
        lattice=LatticeSpec(
            slow_tracks=(8,), slow_vdd=(0.66, 0.70, 0.90),
            tier_caps=(0.225, 0.25), fm_tolerances=(0.10,),
        ),
        prune_distance=1,
    ))
    good = DseConfig(8, 0.70, 0.25, 0.10)
    bad = DseConfig(8, 0.90, 0.25, 0.10)
    rows = {
        good.label: {"config": good.to_dict(), "period_index": 2,
                     "metrics": {"pdp_pj": 1.0, "ppc": 100.0}},
        bad.label: {"config": bad.to_dict(), "period_index": 2,
                    "metrics": {"pdp_pj": 50.0, "ppc": 1.0}},
    }
    by_label = {lbl: DseConfig.from_dict(r["config"])
                for lbl, r in rows.items()}
    front = ParetoFront(2)
    for lbl, row in rows.items():
        front.add(lbl, _objective_vector(row, spec.objectives))

    candidate = DseConfig(8, 0.90, 0.225, 0.10)  # 1 step from `bad` only
    skip = _maybe_prune(candidate, spec, rows, by_label, front)
    assert skip is not None
    assert skip["dominated_by"] == good.label
    assert skip["neighbors"] == [bad.label]
    assert skip["distance"] == 1

    near_front = DseConfig(8, 0.66, 0.25, 0.10)  # 1 step from `good`
    assert _maybe_prune(near_front, spec, rows, by_label, front) is None

    # Widening the trust radius pulls `good`'s prediction into the
    # consensus bound: the pessimist's min un-certifies the same skip.
    wide = resolve_spec(replace(spec, prune_distance=3))
    held = _maybe_prune(candidate, wide, rows, by_label, front)
    assert held is None


def test_period_grid_is_shared_and_deterministic():
    a = period_grid("aes", 9)
    b = period_grid("aes", 9)
    assert a == b
    assert a == sorted(a)
    assert len(set(a)) == len(a)
    with pytest.raises(ValueError):
        period_grid("aes", 1)


def test_spec_env_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_DSE_PERIOD_STEPS", "7")
    monkeypatch.setenv("REPRO_DSE_PRUNE", "off")
    monkeypatch.setenv("REPRO_DSE_WARM", "0")
    monkeypatch.setenv("REPRO_DSE_PRUNE_MARGIN", "0.4")
    spec = resolve_spec(ExploreSpec(design="aes"))
    assert spec.period_steps == 7
    assert spec.prune is False
    assert spec.warm_periods is False
    assert spec.reuse_prefix is True
    assert spec.prune_margin == (0.4, 0.4, 0.4, 0.4)
    # Explicit values beat the environment.
    pinned = resolve_spec(ExploreSpec(design="aes", period_steps=11, prune=True))
    assert pinned.period_steps == 11 and pinned.prune is True
    # Perf toggles stay out of the manifest identity: flipping them
    # must not change which stored run a resume finds.
    on = resolve_spec(ExploreSpec(design="aes", prune=True,
                                  warm_periods=True, reuse_prefix=True))
    off = resolve_spec(ExploreSpec(design="aes", prune=False,
                                   warm_periods=False, reuse_prefix=False))
    assert on.key_fields() == off.key_fields()
